// Social components: Connected Components + BFS over a power-law social
// graph — the paper's fraud-detection / community-mining motivation.
//
// Shows: symmetrization for weakly connected components, the shrinking
// frontier that makes GraphSD's state-aware scheduling pay off, and a
// side-by-side with the two re-implemented baseline systems.
//
// Run:  ./social_components [--scale N] [--workdir DIR]
#include <cstdio>
#include <map>

#include "algos/bfs.hpp"
#include "algos/connected_components.hpp"
#include "baselines/hus_graph_engine.hpp"
#include "baselines/lumos_engine.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/reference_algorithms.hpp"
#include "io/device.hpp"
#include "partition/grid_builder.hpp"
#include "partition/grid_dataset.hpp"
#include "util/cli.hpp"

using namespace graphsd;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.Define("scale", "12", "RMAT scale (2^scale users)");
  flags.Define("workdir", "/tmp/graphsd_social", "dataset directory");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help(argv[0]).c_str());
    return 1;
  }

  RmatOptions gen;
  gen.scale = static_cast<std::uint32_t>(flags.GetInt("scale"));
  gen.edge_factor = 12;
  const EdgeList follows = GenerateRmat(gen);
  const EdgeList friendships = Symmetrize(follows);  // WCC needs both ways
  std::printf("social graph: %u users, %llu directed follows\n",
              follows.num_vertices(),
              static_cast<unsigned long long>(follows.num_edges()));

  // HDD cost model with positioning costs scaled to this example's dataset
  // size (see IoCostModel::ScaledHdd); use MakePosixDevice() for plain
  // real-time I/O against your actual disk.
  auto device = io::MakeSimulatedDevice(io::IoCostModel::ScaledHdd());
  const std::string dir = flags.GetString("workdir");
  partition::GridBuildOptions build;
  build.num_intervals = 8;
  build.name = "social";
  if (auto r = partition::BuildGrid(friendships, *device, dir, build);
      !r.ok()) {
    std::fprintf(stderr, "preprocess: %s\n", r.status().ToString().c_str());
    return 1;
  }
  auto dataset = partition::GridDataset::Open(*device, dir);
  if (!dataset.ok()) return 1;

  // --- connected components on all three systems --------------------------
  std::printf("\nConnected components, three systems on the same dataset:\n");
  std::map<VertexId, std::uint64_t> sizes;
  {
    core::GraphSDEngine engine(*dataset, {});
    algos::ConnectedComponents cc;
    auto report = engine.Run(cc);
    if (!report.ok()) return 1;
    std::printf("%s", report->Summary().c_str());
    for (VertexId v = 0; v < friendships.num_vertices(); ++v) {
      ++sizes[algos::ConnectedComponents::LabelOf(*engine.state(), v)];
    }
  }
  {
    baselines::HusGraphEngine engine(*dataset);
    algos::ConnectedComponents cc;
    auto report = engine.Run(cc);
    if (!report.ok()) return 1;
    std::printf("%s", report->Summary().c_str());
  }
  {
    baselines::LumosEngine engine(*dataset);
    algos::ConnectedComponents cc;
    auto report = engine.Run(cc);
    if (!report.ok()) return 1;
    std::printf("%s", report->Summary().c_str());
  }

  std::uint64_t largest = 0;
  for (const auto& [label, count] : sizes) largest = std::max(largest, count);
  std::printf("\n%zu components; largest holds %llu of %u users (%.1f%%)\n",
              sizes.size(), static_cast<unsigned long long>(largest),
              friendships.num_vertices(),
              100.0 * largest / friendships.num_vertices());

  // --- BFS hops from the most-followed user -------------------------------
  const auto degrees = friendships.OutDegrees();
  VertexId hub = 0;
  for (VertexId v = 1; v < friendships.num_vertices(); ++v) {
    if (degrees[v] > degrees[hub]) hub = v;
  }
  core::GraphSDEngine engine(*dataset, {});
  algos::Bfs bfs(hub);
  auto report = engine.Run(bfs);
  if (!report.ok()) return 1;
  std::map<std::uint64_t, std::uint64_t> level_counts;
  for (VertexId v = 0; v < friendships.num_vertices(); ++v) {
    const auto level = algos::Bfs::LevelOf(*engine.state(), v);
    if (level != UINT64_MAX) ++level_counts[level];
  }
  std::printf("\nBFS from the most-connected user (%u, degree %u):\n", hub,
              degrees[hub]);
  for (const auto& [level, count] : level_counts) {
    std::printf("  %llu hops: %llu users\n",
                static_cast<unsigned long long>(level),
                static_cast<unsigned long long>(count));
  }
  std::printf("%s", report->Summary().c_str());
  return 0;
}
