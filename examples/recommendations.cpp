// Recommendations: Personalized PageRank over a social graph — "who is
// most relevant to this user?" — combined with the out-of-core
// preprocessing path (BuildGridExternal), which never materializes the
// edge list in memory.
//
// Shows: streaming preprocessing from a binary edge file, the single-seed
// activity profile that keeps GraphSD in the on-demand I/O model, and
// top-k extraction from the result state.
//
// Run:  ./recommendations [--scale N] [--user ID] [--topk K]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algos/personalized_pagerank.hpp"
#include "core/engine.hpp"
#include "graph/edge_io.hpp"
#include "graph/generators.hpp"
#include "io/device.hpp"
#include "partition/external_builder.hpp"
#include "partition/grid_dataset.hpp"
#include "util/cli.hpp"

using namespace graphsd;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.Define("scale", "12", "RMAT scale (2^scale users)");
  flags.Define("user", "42", "user to compute recommendations for");
  flags.Define("topk", "10", "number of recommendations to print");
  flags.Define("workdir", "/tmp/graphsd_recs", "working directory");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help(argv[0]).c_str());
    return 1;
  }
  const std::string workdir = flags.GetString("workdir");
  auto device = io::MakeSimulatedDevice(io::IoCostModel::ScaledHdd());
  if (auto s = io::MakeDirectories(workdir); !s.ok()) return 1;

  // A follower graph, written to disk first: the out-of-core builder only
  // ever streams it in bounded chunks — this is the path a 32-billion-edge
  // input would take.
  RmatOptions gen;
  gen.scale = static_cast<std::uint32_t>(flags.GetInt("scale"));
  gen.edge_factor = 12;
  const std::string raw = workdir + "/follows.bin";
  {
    const EdgeList follows = GenerateRmat(gen);
    std::printf("social graph: %u users, %llu follow edges\n",
                follows.num_vertices(),
                static_cast<unsigned long long>(follows.num_edges()));
    if (auto s = WriteBinaryEdgeList(follows, *device, raw); !s.ok()) {
      std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
      return 1;
    }
  }  // the in-memory copy is gone from here on

  partition::ExternalBuildOptions build;
  build.num_intervals = 8;
  build.name = "follows";
  auto manifest =
      partition::BuildGridExternal(raw, *device, workdir + "/ds", build);
  if (!manifest.ok()) {
    std::fprintf(stderr, "preprocess: %s\n",
                 manifest.status().ToString().c_str());
    return 1;
  }
  std::printf("out-of-core preprocessing done: %u x %u grid\n", manifest->p,
              manifest->p);

  auto dataset = partition::GridDataset::Open(*device, workdir + "/ds");
  if (!dataset.ok()) return 1;

  const auto user = static_cast<VertexId>(flags.GetInt("user"));
  core::GraphSDEngine engine(*dataset, {});
  algos::PersonalizedPageRank ppr(user, /*epsilon=*/1e-8);
  auto report = engine.Run(ppr);
  if (!report.ok()) {
    std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->Summary().c_str());

  // Top-k by PPR mass, excluding the user themself.
  std::vector<VertexId> order(dataset->num_vertices());
  for (VertexId v = 0; v < dataset->num_vertices(); ++v) order[v] = v;
  const auto k = static_cast<std::size_t>(flags.GetInt("topk"));
  std::partial_sort(order.begin(), order.begin() + k + 1, order.end(),
                    [&](VertexId a, VertexId b) {
                      return ppr.ValueOf(*engine.state(), a) >
                             ppr.ValueOf(*engine.state(), b);
                    });
  std::printf("\ntop-%zu recommendations for user %u:\n", k, user);
  std::size_t printed = 0;
  for (const VertexId v : order) {
    if (v == user) continue;
    std::printf("  user %-8u score %.3g\n", v,
                ppr.ValueOf(*engine.state(), v));
    if (++printed == k) break;
  }
  return 0;
}
