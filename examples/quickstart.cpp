// Quickstart: the smallest complete GraphSD workflow.
//
//   1. Get an edge list (generated here; ReadTextEdgeList works the same).
//   2. Preprocess it into the 2-D grid representation.
//   3. Open the dataset and run an algorithm on the GraphSD engine.
//   4. Read results and the execution report.
//
// Run:  ./quickstart [--vertices N] [--edges M] [--workdir DIR]
#include <cstdio>

#include "algos/pagerank.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "io/device.hpp"
#include "partition/grid_builder.hpp"
#include "partition/grid_dataset.hpp"
#include "util/cli.hpp"

using namespace graphsd;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.Define("vertices", "4096", "number of vertices to generate");
  flags.Define("edges", "65536", "number of edges to generate");
  flags.Define("workdir", "/tmp/graphsd_quickstart", "dataset directory");
  flags.Define("iterations", "10", "PageRank iterations");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help(argv[0]).c_str());
    return 1;
  }

  // 1. A graph. Any EdgeList works; here a random power-law graph.
  ErdosRenyiOptions gen;
  gen.num_vertices = static_cast<VertexId>(flags.GetInt("vertices"));
  gen.num_edges = static_cast<std::uint64_t>(flags.GetInt("edges"));
  const EdgeList graph = GenerateErdosRenyi(gen);
  std::printf("graph: %u vertices, %llu edges\n", graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  // 2. Preprocess into the grid representation. The simulated device
  //    charges modeled HDD time per request (positioning costs scaled to
  //    this example's dataset size, see IoCostModel::ScaledHdd); use
  //    MakePosixDevice() for plain real-time I/O against your actual disk.
  auto device = io::MakeSimulatedDevice(io::IoCostModel::ScaledHdd());
  const std::string dir = flags.GetString("workdir");
  auto manifest = partition::BuildGrid(graph, *device, dir, {});
  if (!manifest.ok()) {
    std::fprintf(stderr, "preprocess: %s\n",
                 manifest.status().ToString().c_str());
    return 1;
  }
  std::printf("preprocessed into %u x %u sub-blocks under %s\n", manifest->p,
              manifest->p, dir.c_str());

  // 3. Open and run.
  auto dataset = partition::GridDataset::Open(*device, dir);
  if (!dataset.ok()) {
    std::fprintf(stderr, "open: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  core::GraphSDEngine engine(*dataset, {});
  algos::PageRank pagerank(
      static_cast<std::uint32_t>(flags.GetInt("iterations")));
  auto report = engine.Run(pagerank);
  if (!report.ok()) {
    std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
    return 1;
  }

  // 4. Results + report.
  VertexId best = 0;
  for (VertexId v = 1; v < graph.num_vertices(); ++v) {
    if (pagerank.ValueOf(*engine.state(), v) >
        pagerank.ValueOf(*engine.state(), best)) {
      best = v;
    }
  }
  std::printf("highest-ranked vertex: %u (rank %.6g)\n", best,
              pagerank.ValueOf(*engine.state(), best));
  std::printf("%s", report->Summary().c_str());
  return 0;
}
