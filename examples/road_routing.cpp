// Road routing: SSSP on a weighted grid (road-network-like) graph — the
// "navigation and traffic planning" use case the paper cites for SSSP.
//
// Shows: weighted datasets (the engine streams the weight files only for
// algorithms that need them), the wavefront frontier of SSSP, and the
// per-round scheduler decisions as the wave grows and drains.
//
// Run:  ./road_routing [--rows N] [--cols N] [--workdir DIR]
#include <cstdio>

#include "algos/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/reference_algorithms.hpp"
#include "io/device.hpp"
#include "partition/grid_builder.hpp"
#include "partition/grid_dataset.hpp"
#include "util/cli.hpp"

using namespace graphsd;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.Define("rows", "120", "grid rows");
  flags.Define("cols", "120", "grid columns");
  flags.Define("workdir", "/tmp/graphsd_roads", "dataset directory");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help(argv[0]).c_str());
    return 1;
  }
  const auto rows = static_cast<VertexId>(flags.GetInt("rows"));
  const auto cols = static_cast<VertexId>(flags.GetInt("cols"));

  // A city grid: intersections connected right/down with random travel
  // times — symmetrized so every road is two-way.
  const EdgeList roads =
      Symmetrize(GenerateGrid2D(rows, cols, /*seed=*/7, /*max_weight=*/10.0));
  std::printf("road network: %u intersections, %llu road segments\n",
              roads.num_vertices(),
              static_cast<unsigned long long>(roads.num_edges()));

  // HDD cost model with positioning costs scaled to this example's dataset
  // size (see IoCostModel::ScaledHdd); use MakePosixDevice() for plain
  // real-time I/O against your actual disk.
  auto device = io::MakeSimulatedDevice(io::IoCostModel::ScaledHdd());
  const std::string dir = flags.GetString("workdir");
  partition::GridBuildOptions build;
  build.num_intervals = 6;
  build.name = "roads";
  if (auto r = partition::BuildGrid(roads, *device, dir, build); !r.ok()) {
    std::fprintf(stderr, "preprocess: %s\n", r.status().ToString().c_str());
    return 1;
  }
  auto dataset = partition::GridDataset::Open(*device, dir);
  if (!dataset.ok()) return 1;

  const VertexId depot = 0;                      // top-left corner
  const VertexId destination = rows * cols - 1;  // bottom-right corner
  core::GraphSDEngine engine(*dataset, {});
  algos::Sssp sssp(depot);
  auto report = engine.Run(sssp);
  if (!report.ok()) {
    std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("shortest travel time %u -> %u: %.2f\n", depot, destination,
              sssp.ValueOf(*engine.state(), destination));
  std::printf("%s", report->Summary().c_str());

  // The wavefront: active counts and the scheduler's model per round.
  std::printf("\nround  model  active_vertices  io(s)\n");
  for (const auto& round : report->per_round) {
    std::printf("%5u    %c    %15llu  %.3f\n", round.first_iteration,
                static_cast<char>(round.model),
                static_cast<unsigned long long>(round.active_vertices),
                round.io_seconds);
  }

  // Sanity: agree with in-memory Dijkstra.
  const auto reference = ReferenceSssp(roads, depot);
  if (reference[destination] != sssp.ValueOf(*engine.state(), destination)) {
    std::fprintf(stderr, "MISMATCH vs Dijkstra!\n");
    return 1;
  }
  std::printf("\nverified against in-memory Dijkstra: exact match\n");
  return 0;
}
