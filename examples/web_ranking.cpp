// Web ranking: PageRank and PageRank-Delta over a crawl-like web graph —
// the workload class (UK2007/UKUnion) the paper's evaluation leans on.
//
// Shows: the gather vs push programming models on the same dataset, the
// all-active (full I/O) vs shrinking-frontier (on-demand I/O) behaviours,
// and how PR-D reaches PR's fixpoint with far less modeled I/O time.
//
// Run:  ./web_ranking [--pages N] [--workdir DIR]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algos/pagerank.hpp"
#include "algos/pagerank_delta.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "io/device.hpp"
#include "partition/grid_builder.hpp"
#include "partition/grid_dataset.hpp"
#include "util/cli.hpp"

using namespace graphsd;

int main(int argc, char** argv) {
  CliFlags flags;
  flags.Define("pages", "16384", "number of pages (vertices) in the crawl");
  flags.Define("workdir", "/tmp/graphsd_web", "dataset directory");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.Help(argv[0]).c_str());
    return 1;
  }

  WebGraphOptions gen;
  gen.num_vertices = static_cast<VertexId>(flags.GetInt("pages"));
  gen.avg_degree = 12;
  gen.locality = 0.85;  // crawl-order ID locality, like a real web graph
  const EdgeList web = GenerateWebGraph(gen);
  std::printf("web crawl: %u pages, %llu links\n", web.num_vertices(),
              static_cast<unsigned long long>(web.num_edges()));

  // HDD cost model with positioning costs scaled to this example's dataset
  // size (see IoCostModel::ScaledHdd); use MakePosixDevice() for plain
  // real-time I/O against your actual disk.
  auto device = io::MakeSimulatedDevice(io::IoCostModel::ScaledHdd());
  const std::string dir = flags.GetString("workdir");
  partition::GridBuildOptions build;
  build.num_intervals = 8;
  build.name = "web";
  if (auto r = partition::BuildGrid(web, *device, dir, build); !r.ok()) {
    std::fprintf(stderr, "preprocess: %s\n", r.status().ToString().c_str());
    return 1;
  }
  auto dataset = partition::GridDataset::Open(*device, dir);
  if (!dataset.ok()) {
    std::fprintf(stderr, "open: %s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // Full PageRank: every page active every iteration -> full I/O + FCIU.
  core::GraphSDEngine engine(*dataset, {});
  algos::PageRank pagerank(20);
  auto pr_report = engine.Run(pagerank);
  if (!pr_report.ok()) return 1;
  std::vector<double> pr(web.num_vertices());
  for (VertexId v = 0; v < web.num_vertices(); ++v) {
    pr[v] = pagerank.ValueOf(*engine.state(), v);
  }
  std::printf("\nPageRank (20 iterations):\n%s", pr_report->Summary().c_str());

  // PageRank-Delta: activity concentrates on pages still changing ->
  // the scheduler flips to the on-demand model as the frontier shrinks.
  core::GraphSDEngine delta_engine(*dataset, {});
  algos::PageRankDelta delta(1e-10);
  auto prd_report = delta_engine.Run(delta);
  if (!prd_report.ok()) return 1;
  std::printf("\nPageRank-Delta (to epsilon=1e-10):\n%s",
              prd_report->Summary().c_str());

  double max_diff = 0;
  for (VertexId v = 0; v < web.num_vertices(); ++v) {
    max_diff = std::max(
        max_diff, std::abs(delta.ValueOf(*delta_engine.state(), v) - pr[v]));
  }
  std::printf("\nmax |PR-D - PR| = %.3g (both converge to the same ranking)\n",
              max_diff);

  // Top pages.
  std::vector<VertexId> order(web.num_vertices());
  for (VertexId v = 0; v < web.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](VertexId a, VertexId b) { return pr[a] > pr[b]; });
  std::printf("top pages by rank:");
  for (int k = 0; k < 5; ++k) std::printf(" %u", order[k]);
  std::printf("\n");
  return 0;
}
