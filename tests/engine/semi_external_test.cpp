// Semi-external-memory mode (DESIGN.md §14): RAM-resident vertex state,
// active-source skip summaries consulted before any edge I/O, and the
// compressed-frame cache. The mode is an I/O optimization only — every test
// here pins its results against the default engine or a reference run.
#include <gtest/gtest.h>

#include <bit>

#include "core/skip_summary.hpp"
#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::ExpectValuesNear;
using testing::kGraphCases;
using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

core::EngineOptions SemiOptions() {
  core::EngineOptions o;
  o.semi_external = true;
  return o;
}

class SemiExternal : public ::testing::TestWithParam<int> {
 protected:
  const testing::GraphCase& Case() const { return kGraphCases[GetParam()]; }
};

TEST_P(SemiExternal, SsspMatchesReferenceAndDefaultEngine) {
  TempDir dir;
  TestDataset t = MakeDataset(Case().make(), dir.Sub("ds"), 4);
  const auto reference = ReferenceSssp(t.graph, 0);

  core::GraphSDEngine semi_engine(*t.dataset, SemiOptions());
  algos::Sssp semi_sssp(0);
  (void)ValueOrDie(semi_engine.Run(semi_sssp));
  ExpectValuesNear(Values(semi_sssp, *semi_engine.state()), reference, 1e-9);

  // Bit-identical to the default engine, not merely within tolerance:
  // monotone min-plus applies commute, so the semi round order cannot
  // change any value.
  core::GraphSDEngine default_engine(*t.dataset, {});
  algos::Sssp default_sssp(0);
  (void)ValueOrDie(default_engine.Run(default_sssp));
  const auto semi_values = Values(semi_sssp, *semi_engine.state());
  const auto default_values = Values(default_sssp, *default_engine.state());
  for (std::size_t v = 0; v < semi_values.size(); ++v) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(semi_values[v]),
              std::bit_cast<std::uint64_t>(default_values[v]))
        << "vertex " << v;
  }
}

TEST_P(SemiExternal, BfsMatchesReferenceUnderForcedSemiRounds) {
  TempDir dir;
  TestDataset t = MakeDataset(Case().make(), dir.Sub("ds"), 4);
  const auto reference = ReferenceBfs(t.graph, 0);
  core::EngineOptions options = SemiOptions();
  // Force every round semi: no scheduler discretion, the executor itself
  // must be correct on every frontier shape this graph produces.
  options.model_override = [](std::uint32_t) {
    return core::RoundModelChoice::kSemi;
  };
  core::GraphSDEngine engine(*t.dataset, options);
  algos::Bfs bfs(0);
  const auto report = ValueOrDie(engine.Run(bfs));
  EXPECT_EQ(report.semi_rounds, report.rounds);
  for (VertexId v = 0; v < t.graph.num_vertices(); ++v) {
    const std::uint64_t want =
        reference[v] == kUnreachedLevel ? UINT64_MAX : reference[v];
    ASSERT_EQ(algos::Bfs::LevelOf(*engine.state(), v), want) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, SemiExternal, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kGraphCases[info.param].name;
                         });

TEST(SemiExternalSkip, SparseFrontierSkipsSubBlocksAndStaysCorrect) {
  // A long path driven from one end keeps the frontier at a single vertex:
  // with P=8 the grid has many sub-blocks whose sources never activate in a
  // given iteration, so the skip summaries must elide real I/O.
  TempDir dir;
  TestDataset t = MakeDataset(testing::MakePathCase(), dir.Sub("ds"), 8);
  const auto reference = ReferenceSssp(t.graph, 0);
  core::EngineOptions options = SemiOptions();
  options.model_override = [](std::uint32_t) {
    return core::RoundModelChoice::kSemi;
  };
  core::GraphSDEngine engine(*t.dataset, options);
  algos::Sssp sssp(0);
  const auto report = ValueOrDie(engine.Run(sssp));
  ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
  EXPECT_GT(report.semi_rounds, 0u);
  EXPECT_GT(report.blocks_skipped, 0u);
  EXPECT_GT(report.blocks_skipped_bytes, 0u);
}

TEST(SemiExternalSkip, SharedSummariesCarryAcrossRuns) {
  // Registry-style sharing: run one engine to populate the store, then a
  // second engine over the same store. The second run must still be correct
  // and must find the summaries already recorded (no further probes).
  TempDir dir;
  TestDataset t = MakeDataset(testing::MakePathCase(), dir.Sub("ds"), 8);
  const auto reference = ReferenceSssp(t.graph, 0);
  core::SkipSummaryStore store(t.dataset->manifest());

  core::EngineOptions options = SemiOptions();
  options.shared_summaries = &store;
  {
    core::GraphSDEngine engine(*t.dataset, options);
    algos::Sssp sssp(0);
    (void)ValueOrDie(engine.Run(sssp));
  }
  const std::size_t known_after_first = store.known_count();
  EXPECT_GT(known_after_first, 0u);

  core::GraphSDEngine engine(*t.dataset, options);
  algos::Sssp sssp(0);
  const auto report = ValueOrDie(engine.Run(sssp));
  ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
  EXPECT_EQ(store.known_count(), known_after_first);
  EXPECT_GT(report.blocks_skipped, 0u);
}

TEST(SemiExternalFrameCache, CompressedDatasetCachesFramesAndStaysCorrect) {
  TempDir dir;
  TestDataset t =
      MakeDataset(testing::MakeRmatCase(), dir.Sub("ds"), 4, "varint-delta");
  const auto reference = ReferenceSssp(t.graph, 0);
  core::EngineOptions options = SemiOptions();
  options.cache_compressed = true;
  core::GraphSDEngine engine(*t.dataset, options);
  algos::Sssp sssp(0);
  const auto report = ValueOrDie(engine.Run(sssp));
  ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
  EXPECT_GT(report.buffer_frame_puts, 0u);
}

TEST(SemiExternalFrameCache, DecodeOnHitServesSameValuesAsDecodedCache) {
  // Same compressed dataset, cache_compressed on vs off, multi-iteration
  // PageRank-Delta so the second and later iterations actually hit the
  // cache. Values must agree to the sum-threshold tolerance.
  TempDir dir;
  TestDataset t =
      MakeDataset(testing::MakeWebCase(), dir.Sub("ds"), 4, "varint-delta");

  const auto run = [&](bool cache_compressed) {
    core::EngineOptions options;
    options.num_threads = 1;
    options.enable_cross_iteration = false;
    options.cache_compressed = cache_compressed;
    core::GraphSDEngine engine(*t.dataset, options);
    algos::PageRankDelta prd(1e-10);
    const auto report = ValueOrDie(engine.Run(prd));
    if (cache_compressed) {
      EXPECT_GT(report.buffer_frame_puts + report.buffer_frame_hits, 0u);
    }
    return Values(prd, *engine.state());
  };
  const auto framed = run(true);
  const auto decoded = run(false);
  // Single-threaded plain BSP: the apply order is identical, so the cache
  // shape cannot perturb even the floating-point stream.
  for (std::size_t v = 0; v < framed.size(); ++v) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(framed[v]),
              std::bit_cast<std::uint64_t>(decoded[v]))
        << "vertex " << v;
  }
}

TEST(SemiExternalAuto, AutoSchedulerMayMixModelsAndStaysCorrect) {
  // Auto mode with semi enabled: the scheduler picks per round among the
  // three models. Whatever it chooses must not change answers.
  TempDir dir;
  TestDataset t = MakeDataset(testing::MakeRmatCase(), dir.Sub("ds"), 4);
  const auto reference = ReferenceSssp(t.graph, 0);
  core::GraphSDEngine engine(*t.dataset, SemiOptions());
  algos::Sssp sssp(0);
  (void)ValueOrDie(engine.Run(sssp));
  ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
}

}  // namespace
}  // namespace graphsd
