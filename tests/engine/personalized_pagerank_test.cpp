// Personalized PageRank: seeded residual pushing on the engine.
#include <numeric>

#include <gtest/gtest.h>

#include "algos/personalized_pagerank.hpp"
#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::ExpectValuesNear;
using testing::kGraphCases;
using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

TEST(ReferencePpr, MassConservedOnRing) {
  // A ring has no dangling vertices: pushed mass only leaks below epsilon,
  // and ValueOf folds that back, so the total is exactly 1.
  const EdgeList g = GenerateRing(16);
  const auto ppr = ReferencePersonalizedPageRank(g, 3, 1e-14);
  EXPECT_NEAR(std::accumulate(ppr.begin(), ppr.end(), 0.0), 1.0, 1e-9);
}

TEST(ReferencePpr, SourceHoldsTheLargestMass) {
  RmatOptions o;
  o.scale = 8;
  o.edge_factor = 6;
  const EdgeList g = GenerateRmat(o);
  const auto ppr = ReferencePersonalizedPageRank(g, 7, 1e-12);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(ppr[v], ppr[7] + 1e-12);
  }
  EXPECT_GE(ppr[7], 0.15);  // at least the restart mass
}

TEST(ReferencePpr, MassDecaysWithDistance) {
  const EdgeList g = GeneratePath(20);
  const auto ppr = ReferencePersonalizedPageRank(g, 0, 1e-15);
  for (VertexId v = 0; v + 1 < 20; ++v) {
    EXPECT_GT(ppr[v], ppr[v + 1]);
  }
}

class PprEngine : public ::testing::TestWithParam<int> {};

TEST_P(PprEngine, MatchesReferenceOnAllFamilies) {
  const auto& graph_case = kGraphCases[GetParam()];
  TempDir dir;
  TestDataset t = MakeDataset(graph_case.make(), dir.Sub("ds"), 4);
  const auto reference = ReferencePersonalizedPageRank(t.graph, 0, 1e-10);
  core::GraphSDEngine engine(*t.dataset, {});
  algos::PersonalizedPageRank ppr(0, 1e-10);
  (void)ValueOrDie(engine.Run(ppr));
  // Push order differs between engine and reference; both leak at most
  // epsilon per vertex below the threshold.
  ExpectValuesNear(Values(ppr, *engine.state()), reference,
                   1e-10 * t.graph.num_vertices());
}

TEST_P(PprEngine, AllConfigurationsAgree) {
  const auto& graph_case = kGraphCases[GetParam()];
  TempDir dir;
  TestDataset t = MakeDataset(graph_case.make(), dir.Sub("ds"), 4);
  const auto reference = ReferencePersonalizedPageRank(t.graph, 0, 1e-10);
  for (const bool on_demand : {false, true}) {
    core::EngineOptions options;
    options.force_on_demand = on_demand;
    core::GraphSDEngine engine(*t.dataset, options);
    algos::PersonalizedPageRank ppr(0, 1e-10);
    (void)ValueOrDie(engine.Run(ppr));
    SCOPED_TRACE(on_demand);
    ExpectValuesNear(Values(ppr, *engine.state()), reference,
                     1e-10 * t.graph.num_vertices());
  }
}

INSTANTIATE_TEST_SUITE_P(Families, PprEngine, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kGraphCases[info.param].name;
                         });

// PPR's single-seed activity is the most on-demand-friendly workload in
// the library: the scheduler must run at least some SCIU rounds.
TEST(PprScheduling, UsesOnDemandRounds) {
  TempDir dir;
  RmatOptions o;
  o.scale = 11;
  o.edge_factor = 8;
  TestDataset t = MakeDataset(GenerateRmat(o), dir.Sub("ds"), 6);
  core::GraphSDEngine engine(*t.dataset, {});
  algos::PersonalizedPageRank ppr(42, 1e-6);
  const auto report = ValueOrDie(engine.Run(ppr));
  bool saw_sciu = false;
  for (const auto& round : report.per_round) {
    if (round.model == core::RoundModel::kSciu) saw_sciu = true;
  }
  EXPECT_TRUE(saw_sciu);
  // ...and it must be much cheaper than the always-full ablation.
  core::EngineOptions full;
  full.enable_selective = false;
  core::GraphSDEngine full_engine(*t.dataset, full);
  algos::PersonalizedPageRank ppr2(42, 1e-6);
  const auto full_report = ValueOrDie(full_engine.Run(ppr2));
  EXPECT_LT(report.io_seconds, full_report.io_seconds);
}

}  // namespace
}  // namespace graphsd
