// Compression equivalence: extends the prefetch-equivalence sweep with
// compression-on configurations. A varint-delta dataset must be invisible
// in results — bit-identical values against the raw sync reference across
// SCIU/FCIU forcing and prefetch depths {0, 1, 4} — while the run report
// shows the codec at work (frames decoded, compressed vs decoded bytes)
// and the scheduler logs its decisions against on-disk byte counts.
//
// As in the prefetch sweep, every compressed configuration runs traced
// with metrics attached while the raw reference runs untraced, so the
// comparison also proves observability and compression never feed back
// into values.
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "engine_test_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace graphsd {
namespace {

using testing::kGraphCases;
using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

struct PrefetchConfig {
  const char* name;
  std::size_t depth;
  bool overlap;
  std::size_t threads;  // worker pool size == compute shard count
};

// Thread counts rotate {1, 2, 8} across the configurations so decode,
// checksum offload and sharded compute all run under real parallelism
// while every comparison stays bitwise against the serial reference.
constexpr PrefetchConfig kConfigs[] = {
    {"sync_serial", 0, false, 1},   {"sync_overlap_flag", 0, true, 8},
    {"depth1_serial", 1, false, 2}, {"depth1_overlap", 1, true, 8},
    {"depth4_serial", 4, false, 1}, {"depth4_overlap", 4, true, 2},
};

struct RunObservation {
  std::vector<double> values;
  io::IoStatsSnapshot io;
  std::uint32_t iterations = 0;
  std::uint64_t rounds = 0;
  core::ExecutionReport report;
};

core::EngineOptions WithConfig(core::EngineOptions options,
                               const PrefetchConfig& config) {
  // Destination-interval sharding keeps the reduction order fixed at any
  // shard count, so bitwise comparison holds under real parallelism too.
  options.num_threads = config.threads;
  options.compute_threads = config.threads;
  options.prefetch_depth = config.depth;
  options.overlap_io = config.overlap;
  return options;
}

template <typename Program>
RunObservation Observe(const TestDataset& t, const core::EngineOptions& options,
                       Program program) {
  RunObservation obs;
  const io::IoStatsSnapshot before = t.device->stats().Snapshot();
  core::GraphSDEngine engine(*t.dataset, options);
  obs.report = ValueOrDie(engine.Run(program));
  obs.io = t.device->stats().Snapshot() - before;
  obs.values = Values(program, *engine.state());
  obs.iterations = obs.report.iterations;
  obs.rounds = obs.report.rounds;
  return obs;
}

void ExpectValuesBitIdentical(const std::vector<double>& got,
                              const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_EQ(got[v], want[v]) << "vertex " << v;
  }
}

void ExpectSameIo(const io::IoStatsSnapshot& got,
                  const io::IoStatsSnapshot& want) {
  EXPECT_EQ(got.seq_read_bytes, want.seq_read_bytes);
  EXPECT_EQ(got.rand_read_bytes, want.rand_read_bytes);
  EXPECT_EQ(got.seq_read_ops, want.seq_read_ops);
  EXPECT_EQ(got.rand_read_ops, want.rand_read_ops);
  EXPECT_EQ(got.retries, want.retries);
  EXPECT_EQ(got.checksum_failures, want.checksum_failures);
}

std::uint64_t ReadBytes(const io::IoStatsSnapshot& io) {
  return io.seq_read_bytes + io.rand_read_bytes;
}

/// The compression counters every compressed run must report.
void ExpectCompressionReported(const core::ExecutionReport& report) {
  EXPECT_EQ(report.codec, "varint-delta");
  EXPECT_GT(report.frames_decoded, 0u);
  EXPECT_GT(report.compressed_bytes_read, 0u);
  EXPECT_GT(report.decoded_bytes, 0u);
  EXPECT_GE(report.decode_seconds, 0.0);
}

/// Sweeps `make_program()` on the compressed dataset across every prefetch
/// configuration, comparing values bitwise against the raw sync reference
/// and I/O bytes across the compressed runs themselves.
template <typename MakeProgram>
void SweepCompressedConfigs(const TestDataset& raw, const TestDataset& comp,
                            const core::EngineOptions& base,
                            MakeProgram make_program) {
  const RunObservation reference =
      Observe(raw, WithConfig(base, kConfigs[0]), make_program());
  EXPECT_EQ(reference.report.codec, "none");
  EXPECT_EQ(reference.report.frames_decoded, 0u);

  std::optional<RunObservation> comp_reference;
  for (const PrefetchConfig& config : kConfigs) {
    SCOPED_TRACE(config.name);
    core::EngineOptions options = WithConfig(base, config);
    obs::TraceBuffer trace;
    obs::MetricsRegistry metrics;
    options.trace = &trace;
    options.metrics = &metrics;
    const RunObservation obs = Observe(comp, options, make_program());
    EXPECT_GT(trace.event_count(), 0u);

    // Decode must be lossless end to end: same values, same BSP structure.
    ExpectValuesBitIdentical(obs.values, reference.values);
    EXPECT_EQ(obs.iterations, reference.iterations);
    EXPECT_EQ(obs.rounds, reference.rounds);
    ExpectCompressionReported(obs.report);
    EXPECT_EQ(obs.io.checksum_failures, 0u);

    // Prefetch depth must not change what a compressed run reads.
    if (!comp_reference.has_value()) {
      comp_reference = obs;
      continue;
    }
    ExpectSameIo(obs.io, comp_reference->io);
    EXPECT_EQ(obs.report.frames_decoded, comp_reference->report.frames_decoded);
    EXPECT_EQ(obs.report.compressed_bytes_read,
              comp_reference->report.compressed_bytes_read);
    EXPECT_EQ(obs.report.decoded_bytes, comp_reference->report.decoded_bytes);
    EXPECT_NEAR(obs.report.io_seconds, comp_reference->report.io_seconds,
                1e-9 * comp_reference->report.io_seconds + 1e-12);
  }
}

class CompressedEquivalence : public ::testing::TestWithParam<int> {
 protected:
  const testing::GraphCase& Case() const { return kGraphCases[GetParam()]; }

  /// Builds the same graph twice: raw reference and varint-delta layout.
  void BuildBoth() {
    raw_ = MakeDataset(Case().make(), dir_.Sub("raw"), 4);
    comp_ = MakeDataset(Case().make(), dir_.Sub("comp"), 4, "varint-delta");
  }

  TempDir dir_;
  TestDataset raw_;
  TestDataset comp_;
};

TEST_P(CompressedEquivalence, SsspForcedOnDemand) {
  BuildBoth();
  core::EngineOptions base;
  base.force_on_demand = true;  // SCIU whole-frame on-demand path
  SweepCompressedConfigs(raw_, comp_, base, [] { return algos::Sssp(0); });
}

TEST_P(CompressedEquivalence, BfsFullStreamingOnly) {
  BuildBoth();
  core::EngineOptions base;
  base.enable_selective = false;  // FCIU fetch+decode pipeline
  SweepCompressedConfigs(raw_, comp_, base, [] { return algos::Bfs(0); });

  // Full streaming moves strictly fewer on-disk bytes from the compressed
  // layout — the Figure 7 traffic reduction, asserted end to end here.
  core::EngineOptions sync = WithConfig(base, kConfigs[0]);
  const RunObservation raw_obs = Observe(raw_, sync, algos::Bfs(0));
  const RunObservation comp_obs = Observe(comp_, sync, algos::Bfs(0));
  EXPECT_LT(ReadBytes(comp_obs.io), ReadBytes(raw_obs.io));
}

TEST_P(CompressedEquivalence, PageRankGatherPath) {
  BuildBoth();
  SweepCompressedConfigs(raw_, comp_, {}, [] { return algos::PageRank(6); });
}

TEST_P(CompressedEquivalence, SsspDefaultSchedulerSerialCharging) {
  // Under serial charging the scheduler's compressed-cost decisions are
  // deterministic (no measured-compute feedback), so the three serial
  // depths must agree with each other on everything; values must match
  // the raw reference bitwise even though the round mix — and with it the
  // iteration count, since FCIU rounds cover two BSP iterations — may
  // differ from the raw dataset's (the costs legitimately change with
  // the layout).
  BuildBoth();
  const RunObservation reference =
      Observe(raw_, WithConfig({}, kConfigs[0]), algos::Sssp(0));
  std::optional<RunObservation> comp_reference;
  for (const PrefetchConfig& config : kConfigs) {
    if (config.overlap) continue;
    SCOPED_TRACE(config.name);
    const RunObservation obs =
        Observe(comp_, WithConfig({}, config), algos::Sssp(0));
    ExpectValuesBitIdentical(obs.values, reference.values);
    ExpectCompressionReported(obs.report);

    // Every scheduled round logged its decision against on-disk bytes.
    ASSERT_FALSE(obs.report.per_round.empty());
    for (const core::RoundStat& round : obs.report.per_round) {
      if (round.model == core::RoundModel::kSkipped) continue;
      EXPECT_GT(round.cost_full, 0.0);
      EXPECT_GT(round.cost_on_demand, 0.0);
    }

    if (!comp_reference.has_value()) {
      comp_reference = obs;
      continue;
    }
    ExpectSameIo(obs.io, comp_reference->io);
    EXPECT_EQ(obs.rounds, comp_reference->rounds);
    EXPECT_EQ(obs.iterations, comp_reference->iterations);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, CompressedEquivalence,
                         ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kGraphCases[info.param].name;
                         });

}  // namespace
}  // namespace graphsd
