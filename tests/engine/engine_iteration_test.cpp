// Iteration-accounting regressions and the differential-testing hooks.
//
// The engine's `iterations` counter must report *logical BSP waves
// executed*, round shapes notwithstanding: an FCIU round whose second half
// had no frontier covered one wave, not two, and an SCIU round whose
// cross-iteration step ran the following wave to completion covered two,
// not one. The forced-model and frontier-probe hooks (EngineOptions) back
// the differential harness and are pinned here at engine level.
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "algos/bfs.hpp"
#include "algos/sssp.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"
#include "engine/engine_test_util.hpp"
#include "graph/generators.hpp"
#include "testing_util.hpp"

namespace graphsd::testing {
namespace {

core::EngineOptions BaseOptions() {
  core::EngineOptions options;
  options.num_threads = 1;
  options.record_per_round = true;
  return options;
}

// Root with no out-edges, forced full model, cross-iteration on: the FCIU
// round's first half drains the frontier, so its second half is vacuous
// and the round spans one BSP iteration — previously accounted as two.
TEST(IterationAccounting, VacuousFciuSecondHalfCountsOneIteration) {
  TempDir dir;
  EdgeList graph(4);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 3);
  TestDataset td = MakeDataset(std::move(graph), dir.Sub("ds"), 2);

  core::EngineOptions options = BaseOptions();
  options.enable_cross_iteration = true;
  options.model_override = [](std::uint32_t) {
    return core::RoundModelChoice::kFull;
  };
  core::GraphSDEngine engine(*td.dataset, options);
  algos::Bfs bfs(0);
  const core::ExecutionReport report = ValueOrDie(engine.Run(bfs));

  EXPECT_EQ(report.iterations, 1u);
  ASSERT_FALSE(report.per_round.empty());
  EXPECT_EQ(report.per_round.back().iterations_covered, 1u);
}

// SSSP waves on {0->1 w5, 0->2 w1, 2->1 w1}: {0} -> {1,2} -> {1} -> {}.
// In round two the cross-iteration step re-pushes the re-activated vertex
// 1 (no out-edges) and drains the frontier, fully pre-executing wave
// three inside the round — previously accounted as one iteration (total
// 2), but three BSP waves ran.
TEST(IterationAccounting, SciuTerminalCrossIterationCountsPreExecutedWave) {
  TempDir dir;
  EdgeList graph(3);
  graph.AddEdge(0, 1, 5.0f);
  graph.AddEdge(0, 2, 1.0f);
  graph.AddEdge(2, 1, 1.0f);
  TestDataset td = MakeDataset(std::move(graph), dir.Sub("ds"), 2);

  core::EngineOptions options = BaseOptions();
  options.enable_cross_iteration = true;
  options.memory_budget_bytes = 1 << 20;  // retention always fits
  options.model_override = [](std::uint32_t) {
    return core::RoundModelChoice::kOnDemand;
  };
  core::GraphSDEngine engine(*td.dataset, options);
  algos::Sssp sssp(0);
  const core::ExecutionReport report = ValueOrDie(engine.Run(sssp));

  EXPECT_EQ(report.iterations, 3u);
  ASSERT_FALSE(report.per_round.empty());
  EXPECT_EQ(report.per_round.back().model, core::RoundModel::kSciu);
  EXPECT_EQ(report.per_round.back().iterations_covered, 2u);
  EXPECT_EQ(sssp.ValueOf(*engine.state(), 1), 2.0);
  EXPECT_EQ(sssp.ValueOf(*engine.state(), 2), 1.0);
}

// The override pins every round to the directed model, bypassing the cost
// evaluation, and is consulted with each round's first iteration.
TEST(ForcedModelHooks, OverridePinsRoundModels) {
  TempDir dir;
  TestDataset td = MakeDataset(GeneratePath(6), dir.Sub("ds"), 2);

  std::vector<std::uint32_t> consulted;
  core::EngineOptions options = BaseOptions();
  options.enable_cross_iteration = false;
  options.model_override = [&consulted](std::uint32_t first_iteration) {
    consulted.push_back(first_iteration);
    return core::RoundModelChoice::kOnDemand;
  };
  {
    core::GraphSDEngine engine(*td.dataset, options);
    algos::Bfs bfs(0);
    const core::ExecutionReport report = ValueOrDie(engine.Run(bfs));
    ASSERT_FALSE(report.per_round.empty());
    for (const core::RoundStat& round : report.per_round) {
      EXPECT_EQ(round.model, core::RoundModel::kSciu)
          << "round at iteration " << round.first_iteration;
    }
    // One consultation per round, at the round's first (0-based) iteration.
    ASSERT_EQ(consulted.size(), report.per_round.size());
    for (std::size_t r = 0; r < consulted.size(); ++r) {
      EXPECT_EQ(consulted[r], report.per_round[r].first_iteration);
    }
  }

  options.model_override = [](std::uint32_t) {
    return core::RoundModelChoice::kFull;
  };
  core::GraphSDEngine engine(*td.dataset, options);
  algos::Bfs bfs(0);
  const core::ExecutionReport report = ValueOrDie(engine.Run(bfs));
  ASSERT_FALSE(report.per_round.empty());
  for (const core::RoundStat& round : report.per_round) {
    EXPECT_EQ(round.model, core::RoundModel::kPlainFull)
        << "round at iteration " << round.first_iteration;
  }
}

// With cross-iteration off the probe sees exactly the plain-BSP frontier
// sequence: the initial frontier at iteration 0, then the set entering
// every following wave, ending with the drained set.
TEST(FrontierProbe, ReportsPlainBspFrontierSequence) {
  TempDir dir;
  TestDataset td = MakeDataset(GeneratePath(5), dir.Sub("ds"), 2);

  std::vector<std::pair<std::uint32_t, std::vector<VertexId>>> probes;
  core::EngineOptions options = BaseOptions();
  options.enable_cross_iteration = false;
  options.frontier_probe = [&probes](std::uint32_t next_iteration,
                                     const core::Frontier& active) {
    std::vector<VertexId> vertices;
    active.ForEachActive([&vertices](std::size_t v) {
      vertices.push_back(static_cast<VertexId>(v));
    });
    probes.emplace_back(next_iteration, std::move(vertices));
  };
  core::GraphSDEngine engine(*td.dataset, options);
  algos::Bfs bfs(0);
  const core::ExecutionReport report = ValueOrDie(engine.Run(bfs));

  EXPECT_EQ(report.iterations, 5u);
  ASSERT_EQ(probes.size(), 6u);
  for (std::uint32_t k = 0; k < 5; ++k) {
    EXPECT_EQ(probes[k].first, k);
    EXPECT_EQ(probes[k].second, std::vector<VertexId>{k}) << "wave " << k;
  }
  EXPECT_EQ(probes[5].first, 5u);
  EXPECT_TRUE(probes[5].second.empty());
}

}  // namespace
}  // namespace graphsd::testing
