// Widest path: the max-min combine on every engine and graph family.
#include <gtest/gtest.h>

#include "algos/widest_path.hpp"
#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::ExpectValuesNear;
using testing::kGraphCases;
using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

TEST(ReferenceWidestPath, PathBottleneckIsMinEdge) {
  EdgeList g(4);
  g.AddEdge(0, 1, 5.0f);
  g.AddEdge(1, 2, 2.0f);
  g.AddEdge(2, 3, 9.0f);
  const auto width = ReferenceWidestPath(g, 0);
  EXPECT_TRUE(std::isinf(width[0]));
  EXPECT_DOUBLE_EQ(width[1], 5.0);
  EXPECT_DOUBLE_EQ(width[2], 2.0);
  EXPECT_DOUBLE_EQ(width[3], 2.0);
}

TEST(ReferenceWidestPath, PrefersWiderDetour) {
  EdgeList g(4);
  g.AddEdge(0, 1, 1.0f);   // narrow direct hop
  g.AddEdge(0, 2, 10.0f);  // wide detour
  g.AddEdge(2, 1, 8.0f);
  const auto width = ReferenceWidestPath(g, 0);
  EXPECT_DOUBLE_EQ(width[1], 8.0);
}

TEST(ReferenceWidestPath, UnreachedIsZero) {
  EdgeList g(3);
  g.AddEdge(0, 1, 4.0f);
  const auto width = ReferenceWidestPath(g, 0);
  EXPECT_DOUBLE_EQ(width[2], 0.0);
}

class WidestPathEngine : public ::testing::TestWithParam<int> {};

TEST_P(WidestPathEngine, MatchesReferenceOnAllFamilies) {
  const auto& graph_case = kGraphCases[GetParam()];
  TempDir dir;
  TestDataset t = MakeDataset(graph_case.make(), dir.Sub("ds"), 4);
  const auto reference = ReferenceWidestPath(t.graph, 0);
  core::GraphSDEngine engine(*t.dataset, {});
  algos::WidestPath widest(0);
  (void)ValueOrDie(engine.Run(widest));
  ExpectValuesNear(Values(widest, *engine.state()), reference, 1e-9);
}

TEST_P(WidestPathEngine, IdenticalUnderForcedOnDemand) {
  const auto& graph_case = kGraphCases[GetParam()];
  TempDir dir;
  TestDataset t = MakeDataset(graph_case.make(), dir.Sub("ds"), 4);
  const auto reference = ReferenceWidestPath(t.graph, 0);
  core::EngineOptions options;
  options.force_on_demand = true;
  core::GraphSDEngine engine(*t.dataset, options);
  algos::WidestPath widest(0);
  (void)ValueOrDie(engine.Run(widest));
  ExpectValuesNear(Values(widest, *engine.state()), reference, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Families, WidestPathEngine, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kGraphCases[info.param].name;
                         });

TEST(WidestPathEngine2, BaselinesAgree) {
  TempDir dir;
  TestDataset t = MakeDataset(testing::MakeRmatCase(), dir.Sub("ds"), 4);
  const auto reference = ReferenceWidestPath(t.graph, 0);
  {
    baselines::HusGraphEngine engine(*t.dataset);
    algos::WidestPath widest(0);
    (void)ValueOrDie(engine.Run(widest));
    ExpectValuesNear(Values(widest, *engine.state()), reference, 1e-9);
  }
  {
    baselines::LumosEngine engine(*t.dataset);
    algos::WidestPath widest(0);
    (void)ValueOrDie(engine.Run(widest));
    ExpectValuesNear(Values(widest, *engine.state()), reference, 1e-9);
  }
}

}  // namespace
}  // namespace graphsd
