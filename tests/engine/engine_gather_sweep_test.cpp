// Parameterized exactness sweep for the gather path: PageRank under FCIU
// must equal the synchronous reference for EVERY iteration count — odd
// counts force a trailing plain round, even counts are all two-iteration
// FCIU rounds, and both interleave with buffering.
#include <tuple>

#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::ExpectValuesNear;
using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

class GatherSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(GatherSweep, PageRankExactForEveryIterationCount) {
  const auto [iterations, p] = GetParam();
  TempDir dir;
  RmatOptions o;
  o.scale = 7;
  o.edge_factor = 5;
  TestDataset t = MakeDataset(GenerateRmat(o), dir.Sub("ds"), p);
  const auto reference = ReferencePageRank(t.graph, iterations);

  core::GraphSDEngine engine(*t.dataset, {});
  algos::PageRank pr(iterations);
  const auto report = ValueOrDie(engine.Run(pr));
  EXPECT_EQ(report.iterations, iterations);
  // Even iteration counts need ceil(n/2) rounds; odd add a plain round.
  EXPECT_EQ(report.rounds, (iterations + 1) / 2);
  ExpectValuesNear(Values(pr, *engine.state()), reference, 1e-11);
}

TEST_P(GatherSweep, PageRankExactWithoutBuffering) {
  const auto [iterations, p] = GetParam();
  TempDir dir;
  RmatOptions o;
  o.scale = 7;
  o.edge_factor = 5;
  TestDataset t = MakeDataset(GenerateRmat(o), dir.Sub("ds"), p);
  const auto reference = ReferencePageRank(t.graph, iterations);

  core::EngineOptions options;
  options.enable_buffering = false;
  core::GraphSDEngine engine(*t.dataset, options);
  algos::PageRank pr(iterations);
  (void)ValueOrDie(engine.Run(pr));
  ExpectValuesNear(Values(pr, *engine.state()), reference, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    IterationsByP, GatherSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                       ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint32_t, std::uint32_t>>&
           info) {
      return "iters" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// Damping sensitivity: the engine must respect non-default damping.
TEST(GatherDamping, NonDefaultDampingMatchesReference) {
  TempDir dir;
  RmatOptions o;
  o.scale = 7;
  TestDataset t = MakeDataset(GenerateRmat(o), dir.Sub("ds"), 3);
  for (const double damping : {0.5, 0.9, 0.99}) {
    const auto reference = ReferencePageRank(t.graph, 4, damping);
    core::GraphSDEngine engine(*t.dataset, {});
    algos::PageRank pr(4, damping);
    (void)ValueOrDie(engine.Run(pr));
    SCOPED_TRACE(damping);
    ExpectValuesNear(Values(pr, *engine.state()), reference, 1e-11);
  }
}

// Relative-epsilon PR-Delta (the benchmark configuration) still converges
// to the PageRank fixpoint.
TEST(PageRankDeltaRelative, ConvergesToFixpoint) {
  TempDir dir;
  RmatOptions o;
  o.scale = 8;
  o.edge_factor = 6;
  TestDataset t = MakeDataset(GenerateRmat(o), dir.Sub("ds"), 4);
  const auto reference = ReferencePageRank(t.graph, 300);
  core::GraphSDEngine engine(*t.dataset, {});
  algos::PageRankDelta prd(/*epsilon=*/1e-6, 0.85, UINT32_MAX,
                           /*relative_epsilon=*/true);
  (void)ValueOrDie(engine.Run(prd));
  // Threshold = 1e-6 * (0.15/n); residual leakage is bounded by n * that.
  ExpectValuesNear(Values(prd, *engine.state()), reference, 1e-6);
}

// A looser relative epsilon terminates in fewer iterations.
TEST(PageRankDeltaRelative, LooserEpsilonTerminatesFaster) {
  TempDir dir;
  RmatOptions o;
  o.scale = 8;
  o.edge_factor = 6;
  TestDataset t = MakeDataset(GenerateRmat(o), dir.Sub("ds"), 4);
  std::uint32_t tight_iterations = 0;
  std::uint32_t loose_iterations = 0;
  {
    core::GraphSDEngine engine(*t.dataset, {});
    algos::PageRankDelta prd(1e-6, 0.85, UINT32_MAX, true);
    tight_iterations = ValueOrDie(engine.Run(prd)).iterations;
  }
  {
    core::GraphSDEngine engine(*t.dataset, {});
    algos::PageRankDelta prd(0.5, 0.85, UINT32_MAX, true);
    loose_iterations = ValueOrDie(engine.Run(prd)).iterations;
  }
  EXPECT_LT(loose_iterations, tight_iterations);
}

}  // namespace
}  // namespace graphsd
