// Stress tests: larger graphs, real thread parallelism, repeated runs.
#include <gtest/gtest.h>

#include "algos/widest_path.hpp"
#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::ExpectValuesNear;
using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

class EngineStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RmatOptions o;
    o.scale = 12;  // ~4k vertices, ~45k edges: largest graph in the suite
    o.edge_factor = 12;
    o.max_weight = 50.0;
    t_ = MakeDataset(GenerateRmat(o), dir_.Sub("ds"), 8);
  }
  TempDir dir_;
  TestDataset t_;
};

TEST_F(EngineStressTest, SsspIdenticalAcrossThreadCounts) {
  const auto reference = ReferenceSssp(t_.graph, 0);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    core::EngineOptions options;
    options.num_threads = threads;
    core::GraphSDEngine engine(*t_.dataset, options);
    algos::Sssp sssp(0);
    (void)ValueOrDie(engine.Run(sssp));
    SCOPED_TRACE(threads);
    ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
  }
}

TEST_F(EngineStressTest, CcLabelsBitIdenticalAcrossRepeatedParallelRuns) {
  // Min-combines are order-independent, so even racy schedules must land on
  // identical labels run after run.
  TempDir dir2;
  TestDataset sym = MakeDataset(Symmetrize(t_.graph), dir2.Sub("sym"), 8);
  core::EngineOptions options;
  options.num_threads = 4;
  std::vector<VertexId> first;
  for (int run = 0; run < 3; ++run) {
    core::GraphSDEngine engine(*sym.dataset, options);
    algos::ConnectedComponents cc;
    (void)ValueOrDie(engine.Run(cc));
    std::vector<VertexId> labels(sym.graph.num_vertices());
    for (VertexId v = 0; v < sym.graph.num_vertices(); ++v) {
      labels[v] = algos::ConnectedComponents::LabelOf(*engine.state(), v);
    }
    if (run == 0) {
      first = labels;
    } else {
      ASSERT_EQ(labels, first) << "run " << run;
    }
  }
}

TEST_F(EngineStressTest, PageRankStableAcrossThreadCounts) {
  // Double addition reorders under parallelism; values must agree to fp
  // round-off, not bit-exactness.
  const auto reference = ReferencePageRank(t_.graph, 8);
  for (const std::size_t threads : {1u, 4u}) {
    core::EngineOptions options;
    options.num_threads = threads;
    core::GraphSDEngine engine(*t_.dataset, options);
    algos::PageRank pr(8);
    (void)ValueOrDie(engine.Run(pr));
    SCOPED_TRACE(threads);
    ExpectValuesNear(Values(pr, *engine.state()), reference, 1e-10);
  }
}

TEST_F(EngineStressTest, WidestPathAtScale) {
  const auto reference = ReferenceWidestPath(t_.graph, 0);
  core::EngineOptions options;
  options.num_threads = 4;
  core::GraphSDEngine engine(*t_.dataset, options);
  algos::WidestPath widest(0);
  (void)ValueOrDie(engine.Run(widest));
  ExpectValuesNear(Values(widest, *engine.state()), reference, 1e-9);
}

TEST_F(EngineStressTest, ModeledIoIsDeterministicAcrossRuns) {
  // The virtual clock depends only on the request sequence, which is
  // deterministic for a fixed dataset and options — even multithreaded,
  // since loads are issued from the driver thread.
  core::EngineOptions options;
  options.num_threads = 4;
  double first = -1;
  for (int run = 0; run < 2; ++run) {
    core::GraphSDEngine engine(*t_.dataset, options);
    algos::PageRank pr(4);
    const auto report = ValueOrDie(engine.Run(pr));
    if (first < 0) {
      first = report.io_seconds;
    } else {
      EXPECT_DOUBLE_EQ(report.io_seconds, first);
    }
  }
}

TEST_F(EngineStressTest, ManySequentialRunsDoNotLeakState) {
  // Alternate algorithms on one dataset; each run must be self-contained
  // (fresh values file, fresh frontiers, fresh buffer).
  const auto sssp_reference = ReferenceSssp(t_.graph, 3);
  const auto bfs_reference = ReferenceBfs(t_.graph, 3);
  for (int round = 0; round < 3; ++round) {
    core::GraphSDEngine engine(*t_.dataset, {});
    algos::Sssp sssp(3);
    (void)ValueOrDie(engine.Run(sssp));
    ExpectValuesNear(Values(sssp, *engine.state()), sssp_reference, 1e-9);

    core::GraphSDEngine engine2(*t_.dataset, {});
    algos::Bfs bfs(3);
    (void)ValueOrDie(engine2.Run(bfs));
    for (VertexId v = 0; v < t_.graph.num_vertices(); ++v) {
      const std::uint64_t want = bfs_reference[v] == kUnreachedLevel
                                     ? UINT64_MAX
                                     : bfs_reference[v];
      ASSERT_EQ(algos::Bfs::LevelOf(*engine2.state(), v), want);
    }
  }
}

}  // namespace
}  // namespace graphsd
