// Batched multi-source programs vs their single-source originals: one
// K-lane engine run must reproduce each lane's solo run. The monotone
// algorithms (BFS / SSSP / widest-path) converge to a unique fixed point,
// so lanes are bit-identical to solo runs even though the batched frontier
// is the OR of the per-lane frontiers. PPR's residual push is consuming,
// so lanes match solo within the usual sum-threshold tolerance.
#include "algos/multi_source.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "algos/personalized_pagerank.hpp"
#include "algos/widest_path.hpp"
#include "engine/engine_test_util.hpp"

namespace graphsd::testing {
namespace {

std::vector<VertexId> PickRoots(VertexId n) {
  return {0, 1, static_cast<VertexId>(n / 2), static_cast<VertexId>(n - 1)};
}

/// Runs `program` to completion on its own engine and returns the solo
/// per-vertex values.
std::vector<double> RunSolo(const TestDataset& td, core::Program& program,
                            const std::string& scratch) {
  core::EngineOptions options;
  options.num_threads = 2;
  options.scratch_dir = scratch;
  EXPECT_TRUE(io::MakeDirectories(scratch).ok());
  core::GraphSDEngine engine(*td.dataset, options);
  auto report = engine.Run(program);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return Values(program, *engine.state());
}

void CheckMonotoneAlgo(const std::string& algo) {
  for (const GraphCase& gc : kGraphCases) {
    SCOPED_TRACE(std::string(algo) + "/" + gc.name);
    TempDir tmp;
    const TestDataset td = MakeDataset(gc.make(), tmp.Sub("ds"), 4);
    const std::vector<VertexId> roots = PickRoots(td.dataset->num_vertices());

    auto multi = algos::MakeMultiSourceProgram(algo, roots);
    ASSERT_NE(multi, nullptr);
    core::EngineOptions options;
    options.num_threads = 2;
    options.scratch_dir = tmp.Sub("multi");
    ASSERT_TRUE(io::MakeDirectories(options.scratch_dir).ok());
    core::GraphSDEngine engine(*td.dataset, options);
    auto report = engine.Run(*multi);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const core::VertexState& state = *engine.state();

    for (std::uint32_t lane = 0; lane < roots.size(); ++lane) {
      std::unique_ptr<core::Program> solo;
      if (algo == "bfs") {
        solo = std::make_unique<algos::Bfs>(roots[lane]);
      } else if (algo == "sssp") {
        solo = std::make_unique<algos::Sssp>(roots[lane]);
      } else {
        solo = std::make_unique<algos::WidestPath>(roots[lane]);
      }
      const auto solo_values =
          RunSolo(td, *solo, tmp.Sub("solo" + std::to_string(lane)));
      ASSERT_EQ(solo_values.size(), state.num_vertices());
      for (VertexId v = 0; v < state.num_vertices(); ++v) {
        ASSERT_EQ(
            std::bit_cast<std::uint64_t>(multi->LaneValueOf(state, lane, v)),
            std::bit_cast<std::uint64_t>(solo_values[v]))
            << gc.name << " lane " << lane << " vertex " << v << ": "
            << multi->LaneValueOf(state, lane, v) << " vs " << solo_values[v];
      }
    }
  }
}

TEST(MultiSource, BfsLanesMatchSoloBitExact) { CheckMonotoneAlgo("bfs"); }

TEST(MultiSource, SsspLanesMatchSoloBitExact) { CheckMonotoneAlgo("sssp"); }

TEST(MultiSource, WidestPathLanesMatchSoloBitExact) {
  CheckMonotoneAlgo("widest_path");
}

TEST(MultiSource, PprLanesMatchSoloWithinTolerance) {
  // A couple of structurally different cases keep the runtime sane; the
  // differential sweep covers the rest.
  const GraphCase cases[] = {kGraphCases[0], kGraphCases[3]};  // rmat, star
  const double epsilon = 1e-8;
  for (const GraphCase& gc : cases) {
    SCOPED_TRACE(gc.name);
    TempDir tmp;
    const TestDataset td = MakeDataset(gc.make(), tmp.Sub("ds"), 4);
    const std::vector<VertexId> roots = PickRoots(td.dataset->num_vertices());

    auto multi = algos::MakeMultiSourceProgram("ppr", roots, epsilon);
    ASSERT_NE(multi, nullptr);
    core::EngineOptions options;
    options.num_threads = 2;
    options.scratch_dir = tmp.Sub("multi");
    ASSERT_TRUE(io::MakeDirectories(options.scratch_dir).ok());
    core::GraphSDEngine engine(*td.dataset, options);
    auto report = engine.Run(*multi);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const core::VertexState& state = *engine.state();

    for (std::uint32_t lane = 0; lane < roots.size(); ++lane) {
      algos::PersonalizedPageRank solo(roots[lane], epsilon);
      const auto solo_values =
          RunSolo(td, solo, tmp.Sub("solo" + std::to_string(lane)));
      for (VertexId v = 0; v < state.num_vertices(); ++v) {
        const double tol = 2e-6 + 1e-6 * std::fabs(solo_values[v]);
        EXPECT_NEAR(multi->LaneValueOf(state, lane, v), solo_values[v], tol)
            << gc.name << " lane " << lane << " vertex " << v;
      }
    }
  }
}

TEST(MultiSource, FactoryRejectsUnbatchableInputs) {
  EXPECT_EQ(algos::MakeMultiSourceProgram("pr", {0}), nullptr);
  EXPECT_EQ(algos::MakeMultiSourceProgram("cc", {0}), nullptr);
  EXPECT_EQ(algos::MakeMultiSourceProgram("bfs", {}), nullptr);
  EXPECT_NE(algos::MakeMultiSourceProgram("bfs", {0}), nullptr);
  EXPECT_TRUE(algos::IsBatchableAlgo("sssp"));
  EXPECT_FALSE(algos::IsBatchableAlgo("prd"));
}

}  // namespace
}  // namespace graphsd::testing
