// The Lumos-specific modeling knobs: propagation materialization I/O and
// the layout independence of the baseline.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::ExpectValuesNear;
using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

class LumosModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RmatOptions o;
    o.scale = 9;
    o.edge_factor = 8;
    o.max_weight = 10.0;
    t_ = MakeDataset(GenerateRmat(o), dir_.Sub("ds"), 4);
  }
  TempDir dir_;
  TestDataset t_;
};

// Propagation materialization adds exactly |V|·N write + read per
// cross-iteration round and nothing else.
TEST_F(LumosModelTest, PropagationIoChargedPerFciuRound) {
  core::EngineOptions base;
  base.enable_selective = false;
  base.enable_buffering = false;
  core::EngineOptions lumosish = base;
  lumosish.model_lumos_propagation = true;

  algos::PageRank pr(6);  // 3 FCIU rounds
  core::GraphSDEngine plain_engine(*t_.dataset, base);
  const auto plain = ValueOrDie(plain_engine.Run(pr));
  core::GraphSDEngine prop_engine(*t_.dataset, lumosish);
  const auto prop = ValueOrDie(prop_engine.Run(pr));

  const std::uint64_t values_bytes =
      static_cast<std::uint64_t>(t_.dataset->num_vertices()) * 8;
  EXPECT_EQ(prop.io.TotalWriteBytes() - plain.io.TotalWriteBytes(),
            3 * values_bytes);
  EXPECT_EQ(prop.io.TotalReadBytes() - plain.io.TotalReadBytes(),
            3 * values_bytes);
  EXPECT_GT(prop.io_seconds, plain.io_seconds);
}

// Plain rounds (no cross-iteration) charge no propagation I/O even when
// the flag is set.
TEST_F(LumosModelTest, NoChargeOnPlainRounds) {
  core::EngineOptions options;
  options.enable_selective = false;
  options.enable_buffering = false;
  options.enable_cross_iteration = false;  // plain rounds only
  options.model_lumos_propagation = true;
  core::EngineOptions reference = options;
  reference.model_lumos_propagation = false;

  algos::PageRank pr(4);
  core::GraphSDEngine a(*t_.dataset, options);
  core::GraphSDEngine b(*t_.dataset, reference);
  const auto with_flag = ValueOrDie(a.Run(pr));
  const auto without = ValueOrDie(b.Run(pr));
  EXPECT_EQ(with_flag.io.TotalBytes(), without.io.TotalBytes());
}

// Propagation I/O is pure accounting: results are unchanged.
TEST_F(LumosModelTest, ResultsUnaffectedByPropagationModeling) {
  const auto reference = ReferenceSssp(t_.graph, 0);
  baselines::LumosEngine engine(*t_.dataset);
  algos::Sssp sssp(0);
  (void)ValueOrDie(engine.Run(sssp));
  ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
}

// The Lumos baseline runs identically on its own (unsorted, index-free)
// layout — the engine never touches the index under always-full I/O.
TEST_F(LumosModelTest, RunsOnItsOwnUnsortedLayout) {
  TempDir dir2;
  auto device = io::MakeSimulatedDevice(io::IoCostModel::ScaledHdd());
  partition::GridBuildOptions build;
  build.num_intervals = 4;
  build.sort_sub_blocks = false;
  build.build_index = false;
  (void)ValueOrDie(partition::BuildGrid(t_.graph, *device, dir2.Sub("lumos"),
                                        build));
  const auto ds =
      ValueOrDie(partition::GridDataset::Open(*device, dir2.Sub("lumos")));
  const auto reference = ReferenceSssp(t_.graph, 0);
  baselines::LumosEngine engine(ds);
  algos::Sssp sssp(0);
  (void)ValueOrDie(engine.Run(sssp));
  ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
}

// Sorted vs unsorted layout must not change Lumos's edge traffic (it
// streams whole sub-blocks either way).
TEST_F(LumosModelTest, SortedAndUnsortedLayoutsCostTheSame) {
  TempDir dir2;
  auto device = io::MakeSimulatedDevice(io::IoCostModel::ScaledHdd());
  partition::GridBuildOptions build;
  build.num_intervals = 4;
  build.sort_sub_blocks = false;
  build.build_index = false;
  (void)ValueOrDie(partition::BuildGrid(t_.graph, *device, dir2.Sub("lumos"),
                                        build));
  const auto unsorted_ds =
      ValueOrDie(partition::GridDataset::Open(*device, dir2.Sub("lumos")));

  algos::PageRank pr(4);
  baselines::LumosEngine on_unsorted(unsorted_ds);
  const auto unsorted_report = ValueOrDie(on_unsorted.Run(pr));
  baselines::LumosEngine on_sorted(*t_.dataset);
  algos::PageRank pr2(4);
  const auto sorted_report = ValueOrDie(on_sorted.Run(pr2));
  EXPECT_EQ(unsorted_report.io.TotalReadBytes(),
            sorted_report.io.TotalReadBytes());
}

}  // namespace
}  // namespace graphsd
