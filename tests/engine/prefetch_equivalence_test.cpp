// Prefetch-pipeline equivalence: the asynchronous loader must be invisible
// in everything except wall-clock time. Across prefetch depths and overlap
// settings every run must produce bit-identical values, move exactly the
// same virtual-I/O bytes and ops, and handle injected faults exactly like
// the synchronous path (retries absorbed, degradations taken on the same
// round).
//
// The sweep doubles as the observability invariance proof: every
// non-reference configuration runs with a TraceBuffer and MetricsRegistry
// attached while the reference runs untraced, so any feedback from the
// observability layer into bytes, scheduler decisions or values fails the
// comparison.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "engine_test_util.hpp"
#include "io/fault_injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/manifest.hpp"

namespace graphsd {
namespace {

using testing::kGraphCases;
using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

struct PrefetchConfig {
  const char* name;
  std::size_t depth;
  bool overlap;
  std::size_t threads;  // worker pool size == compute shard count
};

// The first entry is the reference: fully synchronous, serial charging,
// single-threaded. The thread axis rotates {1, 2, 8} across the prefetch
// configurations so the sweep also proves sharded parallel compute
// (core/sharded_apply.hpp) invisible: bit-identical values and identical
// byte traffic at every shard count.
constexpr PrefetchConfig kConfigs[] = {
    {"sync_serial", 0, false, 1},
    {"sync_overlap_flag", 0, true, 2},  // flag without a pipeline is inert
    {"depth1_serial", 1, false, 8},
    {"depth1_overlap", 1, true, 1},
    {"depth4_serial", 4, false, 2},
    {"depth4_overlap", 4, true, 8},
};

/// Everything a run exposes that prefetching must not change.
struct RunObservation {
  std::vector<double> values;
  io::IoStatsSnapshot io;
  std::uint32_t iterations = 0;
  std::uint64_t rounds = 0;
  std::uint64_t degraded_rounds = 0;
  core::ExecutionReport report;
};

core::EngineOptions WithConfig(core::EngineOptions options,
                               const PrefetchConfig& config) {
  // Destination-interval sharding fixes the floating-point reduction order
  // regardless of thread count (each destination sees its updates in file
  // order), so the bitwise comparison sweeps real thread counts too; the
  // reference stays the single-threaded serial path.
  options.num_threads = config.threads;
  options.compute_threads = config.threads;
  options.prefetch_depth = config.depth;
  options.overlap_io = config.overlap;
  return options;
}

template <typename Program>
RunObservation Observe(const TestDataset& t, const core::EngineOptions& options,
                       Program program) {
  RunObservation obs;
  const io::IoStatsSnapshot before = t.device->stats().Snapshot();
  core::GraphSDEngine engine(*t.dataset, options);
  obs.report = ValueOrDie(engine.Run(program));
  obs.io = t.device->stats().Snapshot() - before;
  obs.values = Values(program, *engine.state());
  obs.iterations = obs.report.iterations;
  obs.rounds = obs.report.rounds;
  obs.degraded_rounds = obs.report.degraded_rounds;
  return obs;
}

void ExpectSameIo(const io::IoStatsSnapshot& got,
                  const io::IoStatsSnapshot& want) {
  EXPECT_EQ(got.seq_read_bytes, want.seq_read_bytes);
  EXPECT_EQ(got.rand_read_bytes, want.rand_read_bytes);
  EXPECT_EQ(got.seq_write_bytes, want.seq_write_bytes);
  EXPECT_EQ(got.rand_write_bytes, want.rand_write_bytes);
  EXPECT_EQ(got.seq_read_ops, want.seq_read_ops);
  EXPECT_EQ(got.rand_read_ops, want.rand_read_ops);
  EXPECT_EQ(got.seq_write_ops, want.seq_write_ops);
  EXPECT_EQ(got.rand_write_ops, want.rand_write_ops);
  EXPECT_EQ(got.retries, want.retries);
  EXPECT_EQ(got.checksum_failures, want.checksum_failures);
}

void ExpectValuesBitIdentical(const std::vector<double>& got,
                              const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    EXPECT_EQ(got[v], want[v]) << "vertex " << v;
  }
}

void ExpectSameObservation(const RunObservation& got,
                           const RunObservation& want) {
  ExpectValuesBitIdentical(got.values, want.values);
  ExpectSameIo(got.io, want.io);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.degraded_rounds, want.degraded_rounds);
}

/// Runs `make_program()` under every prefetch configuration and checks each
/// against the synchronous reference run. The reference runs untraced; all
/// other configurations run with observability attached, so the comparison
/// also proves tracing and metrics never feed back into the run.
template <typename MakeProgram>
void SweepConfigs(const TestDataset& t, const core::EngineOptions& base,
                  MakeProgram make_program) {
  std::optional<RunObservation> reference;
  for (const PrefetchConfig& config : kConfigs) {
    SCOPED_TRACE(config.name);
    core::EngineOptions options = WithConfig(base, config);
    obs::TraceBuffer trace;
    obs::MetricsRegistry metrics;
    if (reference.has_value()) {
      options.trace = &trace;
      options.metrics = &metrics;
    }
    RunObservation obs = Observe(t, options, make_program());
    if (!reference.has_value()) {
      reference = std::move(obs);
      continue;
    }
    // Observability was on for this run: it must have recorded something
    // (every run has at least a schedule-decision span per round) ...
    EXPECT_GT(trace.event_count(), 0u);
    EXPECT_GT(metrics.size(), 0u);
    // ... and changed nothing the reference run can see.
    ExpectSameObservation(obs, *reference);
    // Modeled I/O time is virtual and must match the reference run (up to
    // summation rounding); compute time is wall clock and may not.
    EXPECT_NEAR(obs.report.io_seconds, reference->report.io_seconds,
                1e-9 * reference->report.io_seconds + 1e-12);
    // The pipelined charge is an accounting view, never extra I/O: it can
    // only shrink the modeled time, and only when overlap is active.
    if (config.depth > 0 && config.overlap) {
      EXPECT_TRUE(obs.report.overlap_io);
      EXPECT_LE(obs.report.TotalSeconds(), obs.report.SerialSeconds());
      EXPECT_GE(obs.report.TotalSeconds(),
                std::max(obs.report.io_seconds, obs.report.compute_seconds) -
                    1e-12);
    } else {
      EXPECT_FALSE(obs.report.overlap_io);
      EXPECT_EQ(obs.report.TotalSeconds(), obs.report.SerialSeconds());
    }
  }
}

class PrefetchEquivalence : public ::testing::TestWithParam<int> {
 protected:
  const testing::GraphCase& Case() const { return kGraphCases[GetParam()]; }
};

TEST_P(PrefetchEquivalence, SsspDefaultSchedulerMix) {
  TempDir dir;
  TestDataset t = MakeDataset(Case().make(), dir.Sub("ds"), 4);
  SweepConfigs(t, {}, [] { return algos::Sssp(0); });
}

TEST_P(PrefetchEquivalence, SsspForcedOnDemand) {
  TempDir dir;
  TestDataset t = MakeDataset(Case().make(), dir.Sub("ds"), 4);
  core::EngineOptions base;
  base.force_on_demand = true;  // SCIU ranged-read prefetch path
  SweepConfigs(t, base, [] { return algos::Sssp(0); });
}

TEST_P(PrefetchEquivalence, BfsFullStreamingOnly) {
  TempDir dir;
  TestDataset t = MakeDataset(Case().make(), dir.Sub("ds"), 4);
  core::EngineOptions base;
  base.enable_selective = false;  // FCIU double-buffered prefetch path
  SweepConfigs(t, base, [] { return algos::Bfs(0); });
}

TEST_P(PrefetchEquivalence, PageRankGatherPath) {
  TempDir dir;
  TestDataset t = MakeDataset(Case().make(), dir.Sub("ds"), 4);
  SweepConfigs(t, {}, [] { return algos::PageRank(6); });
}

TEST_P(PrefetchEquivalence, PageRankDeltaDefault) {
  TempDir dir;
  TestDataset t = MakeDataset(Case().make(), dir.Sub("ds"), 4);
  SweepConfigs(t, {}, [] { return algos::PageRankDelta(1e-12); });
}

TEST_P(PrefetchEquivalence, ConnectedComponentsSymmetrized) {
  TempDir dir;
  TestDataset t = MakeDataset(Symmetrize(Case().make()), dir.Sub("ds"), 4);
  SweepConfigs(t, {}, [] { return algos::ConnectedComponents(); });
}

INSTANTIATE_TEST_SUITE_P(Families, PrefetchEquivalence, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kGraphCases[info.param].name;
                         });

// A transient read fault on a prefetched block must be retried on the
// loader thread exactly as the synchronous path retries it inline: same
// values, same retry count, same byte traffic.
class PrefetchFaultParity : public ::testing::Test {
 protected:
  void SetUp() override {
    RmatOptions o;
    o.scale = 7;
    o.edge_factor = 6;
    o.max_weight = 5.0;
    t_ = MakeDataset(GenerateRmat(o), dir_.Sub("ds"), 3);
    ds_dir_ = dir_.Sub("ds");
  }

  void TearDown() override { t_.device->set_fault_injector(nullptr); }

  /// Path of the first sub-block edge file with at least one edge.
  std::string FirstNonEmptyEdgesPath() const {
    const auto& manifest = t_.dataset->manifest();
    for (std::uint32_t i = 0; i < manifest.p; ++i) {
      for (std::uint32_t j = 0; j < manifest.p; ++j) {
        if (manifest.EdgesIn(i, j) != 0) {
          return partition::SubBlockEdgesPath(ds_dir_, i, j);
        }
      }
    }
    ADD_FAILURE() << "no non-empty sub-block found";
    return {};
  }

  TempDir dir_;
  TestDataset t_;
  std::string ds_dir_;
};

TEST_F(PrefetchFaultParity, TransientReadFaultRetriedIdentically) {
  core::EngineOptions base;
  base.enable_selective = false;  // keep the whole run on prefetched FCIU
  const auto run = [&](const PrefetchConfig& config) {
    return Observe(t_, WithConfig(base, config), algos::Sssp(0));
  };
  const RunObservation clean = run(kConfigs[0]);

  // The rule fires on the first read of one specific edge file. The filter
  // is per-path because only the per-path read order is an invariant of the
  // pipeline; the global interleaving of reads and state writes is not.
  io::FaultInjector injector(/*seed=*/7);
  io::FaultRule rule;
  rule.kind = io::FaultKind::kEio;
  rule.op = io::FaultOp::kRead;
  rule.path_substring = FirstNonEmptyEdgesPath();
  rule.nth = 1;
  rule.max_fires = 1;
  injector.AddRule(rule);
  t_.device->set_fault_injector(&injector);

  std::optional<RunObservation> faulted_sync;
  for (const PrefetchConfig& config : kConfigs) {
    SCOPED_TRACE(config.name);
    injector.Reset();
    const RunObservation obs = run(config);
    // The fault fired and the retry absorbed it: results match the clean
    // run bitwise, and the traffic differs from it only by the retried op.
    EXPECT_EQ(injector.faults_injected(), 1u);
    EXPECT_GE(obs.io.retries, 1u);
    ExpectValuesBitIdentical(obs.values, clean.values);
    if (!faulted_sync.has_value()) {
      faulted_sync = obs;
      continue;
    }
    ExpectSameObservation(obs, *faulted_sync);
  }
}

TEST_F(PrefetchFaultParity, MissingIndexDegradesIdenticallyAcrossDepths) {
  core::EngineOptions base;
  base.force_on_demand = true;
  const auto& manifest = t_.dataset->manifest();
  for (std::uint32_t i = 0; i < manifest.p; ++i) {
    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      ASSERT_OK(io::RemoveFile(partition::SubBlockIndexPath(ds_dir_, i, j)));
    }
  }
  std::optional<RunObservation> reference;
  for (const PrefetchConfig& config : kConfigs) {
    SCOPED_TRACE(config.name);
    const RunObservation obs =
        Observe(t_, WithConfig(base, config), algos::Sssp(0));
    EXPECT_GE(obs.degraded_rounds, 1u);
    if (!reference.has_value()) {
      reference = obs;
      continue;
    }
    ExpectSameObservation(obs, *reference);
  }
}

}  // namespace
}  // namespace graphsd
