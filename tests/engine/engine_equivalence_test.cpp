// Equivalence tests: every engine configuration (update models, ablations,
// buffering, thread counts, forced I/O models) must compute identical
// results — the optimizations are about I/O, never about answers.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::ExpectValuesNear;
using testing::kGraphCases;
using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

struct ConfigCase {
  const char* name;
  core::EngineOptions options;
};

std::vector<ConfigCase> AllConfigs() {
  std::vector<ConfigCase> configs;
  {
    core::EngineOptions o;
    configs.push_back({"default", o});
  }
  {
    core::EngineOptions o;
    o.enable_cross_iteration = false;
    configs.push_back({"b1_no_cross_iteration", o});
  }
  {
    core::EngineOptions o;
    o.enable_selective = false;
    configs.push_back({"b2_no_selective", o});
  }
  {
    core::EngineOptions o;
    o.force_on_demand = true;
    configs.push_back({"b4_always_on_demand", o});
  }
  {
    core::EngineOptions o;
    o.enable_buffering = false;
    configs.push_back({"no_buffer", o});
  }
  {
    core::EngineOptions o;
    o.num_threads = 4;
    configs.push_back({"four_threads", o});
  }
  {
    core::EngineOptions o;
    o.enable_cross_iteration = false;
    o.enable_selective = false;
    o.enable_buffering = false;
    configs.push_back({"plain_bsp", o});
  }
  return configs;
}

class EngineEquivalence : public ::testing::TestWithParam<int> {
 protected:
  const testing::GraphCase& Case() const { return kGraphCases[GetParam()]; }
};

TEST_P(EngineEquivalence, SsspIdenticalAcrossAllConfigs) {
  TempDir dir;
  TestDataset t = MakeDataset(Case().make(), dir.Sub("ds"), 4);
  const auto reference = ReferenceSssp(t.graph, 0);
  for (const ConfigCase& config : AllConfigs()) {
    core::GraphSDEngine engine(*t.dataset, config.options);
    algos::Sssp sssp(0);
    (void)ValueOrDie(engine.Run(sssp));
    SCOPED_TRACE(config.name);
    ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
  }
}

TEST_P(EngineEquivalence, CcIdenticalAcrossAllConfigs) {
  TempDir dir;
  const EdgeList sym = Symmetrize(Case().make());
  TestDataset t = MakeDataset(sym, dir.Sub("ds"), 4);
  const auto reference = ReferenceConnectedComponents(sym);
  for (const ConfigCase& config : AllConfigs()) {
    core::GraphSDEngine engine(*t.dataset, config.options);
    algos::ConnectedComponents cc;
    (void)ValueOrDie(engine.Run(cc));
    SCOPED_TRACE(config.name);
    for (VertexId v = 0; v < sym.num_vertices(); ++v) {
      ASSERT_EQ(algos::ConnectedComponents::LabelOf(*engine.state(), v),
                reference[v])
          << config.name << " vertex " << v;
    }
  }
}

TEST_P(EngineEquivalence, PageRankIdenticalAcrossFullIoConfigs) {
  TempDir dir;
  TestDataset t = MakeDataset(Case().make(), dir.Sub("ds"), 4);
  const auto reference = ReferencePageRank(t.graph, 6);
  for (const ConfigCase& config : AllConfigs()) {
    if (config.options.force_on_demand) continue;  // gather is full-I/O only
    core::GraphSDEngine engine(*t.dataset, config.options);
    algos::PageRank pr(6);
    (void)ValueOrDie(engine.Run(pr));
    SCOPED_TRACE(config.name);
    ExpectValuesNear(Values(pr, *engine.state()), reference, 1e-11);
  }
}

TEST_P(EngineEquivalence, PageRankDeltaSameFixpointAcrossConfigs) {
  TempDir dir;
  TestDataset t = MakeDataset(Case().make(), dir.Sub("ds"), 4);
  const auto reference = ReferencePageRank(t.graph, 200);
  for (const ConfigCase& config : AllConfigs()) {
    core::GraphSDEngine engine(*t.dataset, config.options);
    algos::PageRankDelta prd(1e-12);
    (void)ValueOrDie(engine.Run(prd));
    SCOPED_TRACE(config.name);
    ExpectValuesNear(Values(prd, *engine.state()), reference, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, EngineEquivalence, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return kGraphCases[info.param].name;
                         });

// Interval count must never change results either.
TEST(EngineEquivalenceAcrossP, BfsIdenticalForAllP) {
  const EdgeList g = testing::MakeRmatCase();
  const auto reference = ReferenceBfs(g, 0);
  for (std::uint32_t p : {1u, 2u, 5u, 16u}) {
    TempDir dir;
    TestDataset t = MakeDataset(g, dir.Sub("ds"), p);
    core::GraphSDEngine engine(*t.dataset, {});
    algos::Bfs bfs(0);
    (void)ValueOrDie(engine.Run(bfs));
    SCOPED_TRACE(p);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const std::uint64_t want =
          reference[v] == kUnreachedLevel ? UINT64_MAX : reference[v];
      ASSERT_EQ(algos::Bfs::LevelOf(*engine.state(), v), want)
          << "p=" << p << " vertex " << v;
    }
  }
}

// Memory-budget pressure disables SCIU retention (no cross-iteration) but
// must not change results.
TEST(EngineEquivalenceBudget, TinySciuBudgetStillCorrect) {
  TempDir dir;
  const EdgeList g = testing::MakeRmatCase();
  TestDataset t = MakeDataset(g, dir.Sub("ds"), 4);
  const auto reference = ReferenceSssp(g, 0);
  core::EngineOptions options;
  options.memory_budget_bytes = 16;  // nothing fits: retention always off
  options.force_on_demand = true;
  core::GraphSDEngine engine(*t.dataset, options);
  algos::Sssp sssp(0);
  (void)ValueOrDie(engine.Run(sssp));
  ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
}

}  // namespace
}  // namespace graphsd
