// Failure injection: corrupted or truncated datasets must surface clean
// errors, never crashes or silent wrong answers.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"
#include "partition/manifest.hpp"

namespace graphsd {
namespace {

using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::ValueOrDie;

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RmatOptions o;
    o.scale = 7;
    o.edge_factor = 6;
    o.max_weight = 5.0;
    t_ = MakeDataset(GenerateRmat(o), dir_.Sub("ds"), 3);
    ds_dir_ = dir_.Sub("ds");
  }

  /// Re-opens the dataset after tampering; may fail (that is the test).
  Result<partition::GridDataset> Reopen() {
    return partition::GridDataset::Open(*t_.device, ds_dir_);
  }

  Status Tamper(const std::string& path, const std::string& contents) {
    return io::WriteStringToFile(path, contents);
  }

  TempDir dir_;
  TestDataset t_;
  std::string ds_dir_;
};

TEST_F(FailureInjectionTest, MissingManifest) {
  ASSERT_OK(io::RemoveFile(partition::ManifestPath(ds_dir_)));
  EXPECT_FALSE(Reopen().ok());
}

TEST_F(FailureInjectionTest, GarbageManifest) {
  ASSERT_OK(Tamper(partition::ManifestPath(ds_dir_), "not a manifest at all"));
  const auto result = Reopen();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptData);
}

TEST_F(FailureInjectionTest, ManifestWithLyingEdgeCounts) {
  // Parse the real manifest, inflate one sub-block count, re-serialize.
  const std::string text =
      ValueOrDie(io::ReadFileToString(partition::ManifestPath(ds_dir_)));
  partition::GridManifest manifest =
      ValueOrDie(partition::GridManifest::Parse(text));
  manifest.sub_block_edges[0] += 7;  // breaks the total
  ASSERT_OK(Tamper(partition::ManifestPath(ds_dir_), manifest.Serialize()));
  EXPECT_FALSE(Reopen().ok());
}

TEST_F(FailureInjectionTest, TruncatedSubBlockFileFailsTheRun) {
  // Find a non-empty sub-block and chop its edge file in half.
  const auto& manifest = t_.dataset->manifest();
  for (std::uint32_t i = 0; i < manifest.p; ++i) {
    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      if (manifest.EdgesIn(i, j) < 2) continue;
      const std::string path = partition::SubBlockEdgesPath(ds_dir_, i, j);
      const std::string data = ValueOrDie(io::ReadFileToString(path));
      ASSERT_OK(Tamper(path, data.substr(0, data.size() / 2)));
      core::GraphSDEngine engine(*t_.dataset, {});
      algos::Bfs bfs(0);
      const auto result = engine.Run(bfs);
      EXPECT_FALSE(result.ok());
      EXPECT_EQ(result.status().code(), StatusCode::kIoError);
      return;
    }
  }
  FAIL() << "no non-empty sub-block found";
}

TEST_F(FailureInjectionTest, MissingSubBlockFileFailsTheRun) {
  const auto& manifest = t_.dataset->manifest();
  for (std::uint32_t i = 0; i < manifest.p; ++i) {
    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      if (manifest.EdgesIn(i, j) == 0) continue;
      ASSERT_OK(io::RemoveFile(partition::SubBlockEdgesPath(ds_dir_, i, j)));
      core::GraphSDEngine engine(*t_.dataset, {});
      algos::Bfs bfs(0);
      EXPECT_FALSE(engine.Run(bfs).ok());
      return;
    }
  }
  FAIL() << "no non-empty sub-block found";
}

TEST_F(FailureInjectionTest, MissingIndexDegradesToFullStreaming) {
  core::EngineOptions options;
  options.force_on_demand = true;
  options.num_threads = 1;

  // Baseline values on the intact dataset.
  std::vector<double> want;
  {
    core::GraphSDEngine engine(*t_.dataset, options);
    algos::Sssp sssp(0);
    ASSERT_OK(engine.Run(sssp).status());
    want = testing::Values(sssp, *engine.state());
  }

  // Remove every index file: the first on-demand round fails, the engine
  // falls back to full streaming (which needs no index), and the run still
  // completes with identical results.
  const auto& manifest = t_.dataset->manifest();
  for (std::uint32_t i = 0; i < manifest.p; ++i) {
    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      ASSERT_OK(io::RemoveFile(partition::SubBlockIndexPath(ds_dir_, i, j)));
    }
  }
  core::GraphSDEngine engine(*t_.dataset, options);
  algos::Sssp sssp(0);
  const auto result = engine.Run(sssp);
  ASSERT_OK(result.status());
  EXPECT_GE(ValueOrDie(result).degraded_rounds, 1u);
  testing::ExpectValuesNear(testing::Values(sssp, *engine.state()), want,
                            1e-12);
}

TEST_F(FailureInjectionTest, UnwritableScratchDirFailsCleanly) {
  core::EngineOptions options;
  options.scratch_dir = "/nonexistent/scratch";
  core::GraphSDEngine engine(*t_.dataset, options);
  algos::Bfs bfs(0);
  const auto result = engine.Run(bfs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(FailureInjectionTest, ShortDegreesFileFailsOpen) {
  const std::string path = partition::DegreesPath(ds_dir_);
  const std::string data = ValueOrDie(io::ReadFileToString(path));
  ASSERT_OK(Tamper(path, data.substr(0, data.size() / 2)));
  EXPECT_FALSE(Reopen().ok());
}

TEST_F(FailureInjectionTest, BoundaryTamperingRejected) {
  const std::string text =
      ValueOrDie(io::ReadFileToString(partition::ManifestPath(ds_dir_)));
  partition::GridManifest manifest =
      ValueOrDie(partition::GridManifest::Parse(text));
  manifest.boundaries[1] = manifest.boundaries[2];  // empty interval
  ASSERT_OK(Tamper(partition::ManifestPath(ds_dir_), manifest.Serialize()));
  EXPECT_FALSE(Reopen().ok());
}

}  // namespace
}  // namespace graphsd
