// Run-lifecycle acceptance tests (DESIGN.md §12): cooperative cancellation
// always lands on a committed iteration boundary, checkpoints resume
// bit-identically, damaged slots fall back or surface kCorruptData, and
// mismatched resume preconditions are refused — never silently executed.
#include <bit>
#include <chrono>
#include <span>
#include <thread>

#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "engine_test_util.hpp"
#include "io/file.hpp"
#include "util/cancellation.hpp"

namespace graphsd {
namespace {

using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::ValueOrDie;
using testing::Values;

class EngineLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RmatOptions o;
    o.scale = 7;
    o.edge_factor = 6;
    o.max_weight = 5.0;
    t_ = MakeDataset(GenerateRmat(o), dir_.Sub("ds"), 3);
  }

  /// Deterministic lifecycle options: one thread and serial accounting, so
  /// killed + resumed replays the uninterrupted run bit-for-bit.
  core::EngineOptions Opts() const {
    core::EngineOptions options;
    options.num_threads = 1;
    options.overlap_io = false;
    return options;
  }

  std::string CheckpointDir() const { return dir_.Sub("ck"); }

  static void ExpectBitwiseEqual(const std::vector<double>& got,
                                 const std::vector<double>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t v = 0; v < got.size(); ++v) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got[v]),
                std::bit_cast<std::uint64_t>(want[v]))
          << "vertex " << v;
    }
  }

  TempDir dir_;
  TestDataset t_;
};

TEST_F(EngineLifecycleTest, KillAtBoundaryThenResumeIsBitIdentical) {
  // Uninterrupted baseline.
  core::GraphSDEngine baseline(*t_.dataset, Opts());
  algos::Bfs bfs_base(0);
  const auto base_report = ValueOrDie(baseline.Run(bfs_base));
  const std::vector<double> expect = Values(bfs_base, *baseline.state());
  ASSERT_GT(base_report.iterations, 3u);

  // Killed run: the frontier probe trips the token entering iteration 2;
  // prefetch depth 4 keeps in-flight I/O live across the cancellation so
  // the drain path is exercised too.
  CancellationToken token;
  core::EngineOptions killed_options = Opts();
  killed_options.prefetch_depth = 4;
  killed_options.checkpoint_dir = CheckpointDir();
  killed_options.cancel = &token;
  killed_options.frontier_probe = [&token](std::uint32_t next_iteration,
                                           const core::Frontier&) {
    if (next_iteration >= 2) token.Cancel("test kill");
  };
  core::GraphSDEngine killed(*t_.dataset, killed_options);
  algos::Bfs bfs_killed(0);
  const auto killed_report = ValueOrDie(killed.Run(bfs_killed));
  EXPECT_TRUE(killed_report.cancelled);
  EXPECT_EQ(killed_report.cancel_reason, "test kill");
  EXPECT_EQ(killed_report.iterations, 2u);
  EXPECT_GT(killed_report.checkpoints_written, 0u);

  // Resume to completion.
  core::EngineOptions resume_options = Opts();
  resume_options.prefetch_depth = 4;
  resume_options.checkpoint_dir = CheckpointDir();
  resume_options.resume = true;
  core::GraphSDEngine resumed(*t_.dataset, resume_options);
  algos::Bfs bfs_resumed(0);
  const auto resume_report = ValueOrDie(resumed.Run(bfs_resumed));
  EXPECT_FALSE(resume_report.cancelled);
  EXPECT_TRUE(resume_report.resumed);
  EXPECT_EQ(resume_report.resume_iteration, 2u);
  EXPECT_EQ(resume_report.iterations, base_report.iterations);
  ExpectBitwiseEqual(Values(bfs_resumed, *resumed.state()), expect);
}

TEST_F(EngineLifecycleTest, PreCancelledTokenStopsBeforeAnyRound) {
  CancellationToken token;
  token.Cancel("already stopped");
  core::EngineOptions options = Opts();
  options.cancel = &token;
  options.checkpoint_dir = CheckpointDir();
  core::GraphSDEngine engine(*t_.dataset, options);
  algos::Bfs bfs(0);
  const auto report = ValueOrDie(engine.Run(bfs));
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.cancel_reason, "already stopped");
  EXPECT_EQ(report.iterations, 0u);
  EXPECT_EQ(report.checkpoints_written, 0u);
}

TEST_F(EngineLifecycleTest, GatherDeadlineKillThenResumeCompletesBudget) {
  core::GraphSDEngine baseline(*t_.dataset, Opts());
  algos::PageRank pr_base(10);
  const auto base_report = ValueOrDie(baseline.Run(pr_base));
  ASSERT_EQ(base_report.iterations, 10u);
  const std::vector<double> expect = Values(pr_base, *baseline.state());

  // The deadline may fire at any boundary (or never, on a fast machine) —
  // either way the resumed run must finish the budget bit-identically.
  core::EngineOptions killed_options = Opts();
  killed_options.checkpoint_dir = CheckpointDir();
  killed_options.deadline_seconds = 1e-4;
  core::GraphSDEngine killed(*t_.dataset, killed_options);
  algos::PageRank pr_killed(10);
  const auto killed_report = ValueOrDie(killed.Run(pr_killed));
  if (killed_report.cancelled) {
    EXPECT_EQ(killed_report.cancel_reason, "deadline exceeded");
    EXPECT_LT(killed_report.iterations, 10u);
  }

  core::EngineOptions resume_options = Opts();
  resume_options.checkpoint_dir = CheckpointDir();
  resume_options.resume = true;
  core::GraphSDEngine resumed(*t_.dataset, resume_options);
  algos::PageRank pr_resumed(10);
  const auto resume_report = ValueOrDie(resumed.Run(pr_resumed));
  EXPECT_FALSE(resume_report.cancelled);
  EXPECT_EQ(resume_report.iterations, 10u);
  ExpectBitwiseEqual(Values(pr_resumed, *resumed.state()), expect);
}

TEST_F(EngineLifecycleTest, ResumeFallsBackWhenNewestSlotIsDamaged) {
  core::GraphSDEngine baseline(*t_.dataset, Opts());
  algos::Sssp sssp_base(0);
  const auto base_report = ValueOrDie(baseline.Run(sssp_base));
  ASSERT_GT(base_report.iterations, 3u);
  const std::vector<double> expect = Values(sssp_base, *baseline.state());

  CancellationToken token;
  core::EngineOptions killed_options = Opts();
  killed_options.checkpoint_dir = CheckpointDir();
  killed_options.cancel = &token;
  killed_options.frontier_probe = [&token](std::uint32_t next_iteration,
                                           const core::Frontier&) {
    if (next_iteration >= 3) token.Cancel("test kill");
  };
  core::GraphSDEngine killed(*t_.dataset, killed_options);
  algos::Sssp sssp_killed(0);
  const auto killed_report = ValueOrDie(killed.Run(sssp_killed));
  ASSERT_TRUE(killed_report.cancelled);
  // Rounds can cover 1 or 2 iterations, so the kill lands at the first
  // committed boundary at or past 3.
  ASSERT_GE(killed_report.iterations, 3u);

  // Both slots hold the last two committed boundaries. Truncate the newest
  // (the one matching the kill iteration): resume must fall back to the
  // older boundary and still land on identical final values.
  core::CheckpointStore store(CheckpointDir());
  for (int slot = 0; slot < 2; ++slot) {
    std::string data = ValueOrDie(io::ReadFileToString(store.SlotPath(slot)));
    auto cp = core::DecodeCheckpoint(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
    ASSERT_TRUE(cp.ok()) << cp.status().ToString();
    if (cp->iteration == killed_report.iterations) {
      ASSERT_OK(io::WriteStringToFile(store.SlotPath(slot),
                                      data.substr(0, data.size() / 2)));
    }
  }

  core::EngineOptions resume_options = Opts();
  resume_options.checkpoint_dir = CheckpointDir();
  resume_options.resume = true;
  core::GraphSDEngine resumed(*t_.dataset, resume_options);
  algos::Sssp sssp_resumed(0);
  const auto resume_report = ValueOrDie(resumed.Run(sssp_resumed));
  EXPECT_TRUE(resume_report.resumed);
  EXPECT_LT(resume_report.resume_iteration, killed_report.iterations);
  EXPECT_EQ(resume_report.iterations, base_report.iterations);
  ExpectBitwiseEqual(Values(sssp_resumed, *resumed.state()), expect);
}

TEST_F(EngineLifecycleTest, ResumeWithAllSlotsCorruptFails) {
  CancellationToken token;
  core::EngineOptions killed_options = Opts();
  killed_options.checkpoint_dir = CheckpointDir();
  killed_options.cancel = &token;
  killed_options.frontier_probe = [&token](std::uint32_t next_iteration,
                                           const core::Frontier&) {
    if (next_iteration >= 3) token.Cancel("test kill");
  };
  core::GraphSDEngine killed(*t_.dataset, killed_options);
  algos::Bfs bfs(0);
  ASSERT_TRUE(ValueOrDie(killed.Run(bfs)).cancelled);

  core::CheckpointStore store(CheckpointDir());
  for (int slot = 0; slot < 2; ++slot) {
    ASSERT_OK(io::WriteStringToFile(store.SlotPath(slot), "garbage"));
  }

  core::EngineOptions resume_options = Opts();
  resume_options.checkpoint_dir = CheckpointDir();
  resume_options.resume = true;
  core::GraphSDEngine resumed(*t_.dataset, resume_options);
  algos::Bfs bfs2(0);
  EXPECT_EQ(resumed.Run(bfs2).status().code(), StatusCode::kCorruptData);
}

TEST_F(EngineLifecycleTest, ResumeRefusesDifferentAlgorithm) {
  CancellationToken token;
  core::EngineOptions killed_options = Opts();
  killed_options.checkpoint_dir = CheckpointDir();
  killed_options.cancel = &token;
  killed_options.frontier_probe = [&token](std::uint32_t next_iteration,
                                           const core::Frontier&) {
    if (next_iteration >= 1) token.Cancel("test kill");
  };
  core::GraphSDEngine killed(*t_.dataset, killed_options);
  algos::Bfs bfs(0);
  ASSERT_TRUE(ValueOrDie(killed.Run(bfs)).cancelled);

  core::EngineOptions resume_options = Opts();
  resume_options.checkpoint_dir = CheckpointDir();
  resume_options.resume = true;
  core::GraphSDEngine resumed(*t_.dataset, resume_options);
  algos::ConnectedComponents cc;
  EXPECT_EQ(resumed.Run(cc).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineLifecycleTest, ResumeRefusesDifferentDataset) {
  CancellationToken token;
  core::EngineOptions killed_options = Opts();
  killed_options.checkpoint_dir = CheckpointDir();
  killed_options.cancel = &token;
  killed_options.frontier_probe = [&token](std::uint32_t next_iteration,
                                           const core::Frontier&) {
    if (next_iteration >= 1) token.Cancel("test kill");
  };
  core::GraphSDEngine killed(*t_.dataset, killed_options);
  algos::Bfs bfs(0);
  ASSERT_TRUE(ValueOrDie(killed.Run(bfs)).cancelled);

  // Same graph rebuilt with a different interval count: a different build,
  // a different fingerprint, a refused resume.
  TestDataset other = MakeDataset(t_.graph, dir_.Sub("ds2"), 2);
  core::EngineOptions resume_options = Opts();
  resume_options.checkpoint_dir = CheckpointDir();
  resume_options.resume = true;
  core::GraphSDEngine resumed(*other.dataset, resume_options);
  algos::Bfs bfs2(0);
  EXPECT_EQ(resumed.Run(bfs2).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineLifecycleTest, ResumeAfterNaturalCompletionIsANoOp) {
  core::EngineOptions options = Opts();
  options.checkpoint_dir = CheckpointDir();
  core::GraphSDEngine first(*t_.dataset, options);
  algos::Bfs bfs(0);
  const auto first_report = ValueOrDie(first.Run(bfs));
  EXPECT_FALSE(first_report.cancelled);
  const std::vector<double> expect = Values(bfs, *first.state());

  core::EngineOptions resume_options = Opts();
  resume_options.checkpoint_dir = CheckpointDir();
  resume_options.resume = true;
  core::GraphSDEngine resumed(*t_.dataset, resume_options);
  algos::Bfs bfs2(0);
  const auto resume_report = ValueOrDie(resumed.Run(bfs2));
  EXPECT_TRUE(resume_report.resumed);
  EXPECT_FALSE(resume_report.cancelled);
  EXPECT_EQ(resume_report.iterations, first_report.iterations);
  ExpectBitwiseEqual(Values(bfs2, *resumed.state()), expect);
}

// Concurrency surface for the TSan build (tsan_buffer_cancel_smoke):
// SubBlockBuffer Get/Put/eviction on the compute threads racing the loader
// thread's cancellation drain. The killer thread trips the token at a
// different point each repetition; any outcome is valid as long as the run
// lands cleanly on a committed boundary with no data race.
TEST_F(EngineLifecycleTest, ConcurrentCancellationDuringBufferedPrefetch) {
  for (int rep = 0; rep < 10; ++rep) {
    CancellationToken token;
    core::EngineOptions options;
    options.num_threads = 4;
    options.prefetch_depth = 4;
    options.enable_selective = false;  // FCIU rounds keep the buffer hot
    options.cancel = &token;
    // Checkpointing makes the race three-way: compute threads, the async
    // checkpoint writer and the killer all overlap the cancellation drain.
    options.checkpoint_dir = CheckpointDir() + std::to_string(rep);
    core::GraphSDEngine engine(*t_.dataset, options);
    algos::PageRank pr(50);
    std::thread killer([&token, rep] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * rep * rep));
      token.Cancel("concurrent kill");
    });
    const auto report = ValueOrDie(engine.Run(pr));
    killer.join();
    EXPECT_LE(report.iterations, 50u);
    if (!report.cancelled) EXPECT_EQ(report.iterations, 50u);
  }
}

TEST_F(EngineLifecycleTest, ResumeOnEmptyDirectoryStartsFresh) {
  core::EngineOptions options = Opts();
  options.checkpoint_dir = CheckpointDir();
  options.resume = true;  // nothing on disk yet
  core::GraphSDEngine engine(*t_.dataset, options);
  algos::Bfs bfs(0);
  const auto report = ValueOrDie(engine.Run(bfs));
  EXPECT_FALSE(report.resumed);
  EXPECT_FALSE(report.cancelled);
  EXPECT_GT(report.iterations, 0u);
}

}  // namespace
}  // namespace graphsd
