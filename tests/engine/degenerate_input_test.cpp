// Degenerate-input regression suite: the grid builder and both update
// models must handle the pathological corners — no edges at all, a single
// vertex, self-loops, duplicate (multi-)edges — and must handle them
// identically whichever model the scheduler is forced into and whatever the
// prefetch depth. These inputs historically break out-of-core systems in
// boundary arithmetic (empty sub-blocks, zero-degree intervals) rather than
// in the algorithms themselves.
#include <cmath>
#include <limits>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

/// The model/prefetch grid every degenerate input is swept across.
struct EngineConfig {
  const char* name;
  bool force_on_demand;
  bool enable_selective;
  std::size_t prefetch_depth;
  bool overlap;
};

constexpr EngineConfig kEngineConfigs[] = {
    {"default_sync", false, true, 0, false},
    {"sciu_sync", true, true, 0, false},
    {"fciu_sync", false, false, 0, false},
    {"default_depth4", false, true, 4, true},
    {"sciu_depth4", true, true, 4, true},
    {"fciu_depth4", false, false, 4, true},
};

core::EngineOptions MakeOptions(const EngineConfig& config) {
  core::EngineOptions options;
  options.num_threads = 1;  // fixed reduction order: values compare bitwise
  options.force_on_demand = config.force_on_demand;
  options.enable_selective = config.enable_selective;
  options.prefetch_depth = config.prefetch_depth;
  options.overlap_io = config.overlap;
  return options;
}

/// Runs `make_program()` on `graph` under every engine configuration,
/// requires all runs to agree bitwise, and returns the agreed values.
template <typename MakeProgram>
std::vector<double> RunEverywhere(const EdgeList& graph, std::uint32_t p,
                                  MakeProgram make_program) {
  TempDir dir;
  std::optional<std::vector<double>> agreed;
  for (const EngineConfig& config : kEngineConfigs) {
    SCOPED_TRACE(config.name);
    TestDataset t = MakeDataset(graph, dir.Sub(config.name), p);
    auto program = make_program();
    core::GraphSDEngine engine(*t.dataset, MakeOptions(config));
    const core::ExecutionReport report = ValueOrDie(engine.Run(program));
    (void)report;
    std::vector<double> values = Values(program, *engine.state());
    if (!agreed.has_value()) {
      agreed = std::move(values);
      continue;
    }
    EXPECT_EQ(values.size(), agreed->size());
    if (values.size() != agreed->size()) continue;
    for (std::size_t v = 0; v < values.size(); ++v) {
      EXPECT_EQ(values[v], (*agreed)[v]) << "vertex " << v;
    }
  }
  return *agreed;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(DegenerateInput, EdgeFreeGraphSssp) {
  // Vertices exist, edges don't: every round sees an empty fetch set.
  EdgeList graph(16);
  const std::vector<double> dist =
      RunEverywhere(graph, 4, [] { return algos::Sssp(0); });
  ASSERT_EQ(dist.size(), 16u);
  EXPECT_EQ(dist[0], 0.0);
  for (std::size_t v = 1; v < dist.size(); ++v) EXPECT_EQ(dist[v], kInf);
}

TEST(DegenerateInput, EdgeFreeGraphPageRank) {
  EdgeList graph(16);
  const std::vector<double> rank =
      RunEverywhere(graph, 4, [] { return algos::PageRank(5); });
  ASSERT_EQ(rank.size(), 16u);
  // No links: every vertex keeps the teleport mass, uniformly.
  for (std::size_t v = 1; v < rank.size(); ++v) EXPECT_EQ(rank[v], rank[0]);
}

TEST(DegenerateInput, SingleVertexNoEdges) {
  EdgeList graph(1);
  const std::vector<double> dist =
      RunEverywhere(graph, 1, [] { return algos::Sssp(0); });
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_EQ(dist[0], 0.0);
}

TEST(DegenerateInput, SingleVertexSelfLoop) {
  EdgeList graph(1);
  graph.AddEdge(0, 0, 2.5);
  const std::vector<double> dist =
      RunEverywhere(graph, 1, [] { return algos::Sssp(0); });
  ASSERT_EQ(dist.size(), 1u);
  // The self-loop relaxation 0 + 2.5 never improves on 0.
  EXPECT_EQ(dist[0], 0.0);
}

TEST(DegenerateInput, SelfLoopsEverywhere) {
  // A path where every vertex also points at itself: self-loops must be
  // carried through partitioning (diagonal sub-blocks) without disturbing
  // the real shortest paths.
  constexpr VertexId kN = 64;
  EdgeList graph(kN);
  for (VertexId v = 0; v < kN; ++v) {
    graph.AddEdge(v, v, 0.5);
    if (v + 1 < kN) graph.AddEdge(v, v + 1, 1.0);
  }
  const std::vector<double> dist =
      RunEverywhere(graph, 4, [] { return algos::Sssp(0); });
  ASSERT_EQ(dist.size(), kN);
  for (VertexId v = 0; v < kN; ++v) {
    EXPECT_EQ(dist[v], static_cast<double>(v)) << "vertex " << v;
  }
}

TEST(DegenerateInput, DuplicateEdgesActAsOne) {
  // A multigraph chain with every edge tripled. Min-plus relaxation is
  // idempotent, so duplicates must not change distances — only traffic.
  constexpr VertexId kN = 48;
  EdgeList graph(kN);
  for (VertexId v = 0; v + 1 < kN; ++v) {
    for (int copy = 0; copy < 3; ++copy) graph.AddEdge(v, v + 1, 2.0);
  }
  const std::vector<double> dist =
      RunEverywhere(graph, 4, [] { return algos::Sssp(0); });
  const std::vector<double> want = ReferenceSssp(graph, 0);
  ASSERT_EQ(dist.size(), want.size());
  for (VertexId v = 0; v < kN; ++v) {
    EXPECT_EQ(dist[v], want[v]) << "vertex " << v;
  }
}

TEST(DegenerateInput, DuplicatesAndSelfLoopsCombined) {
  // Star with duplicated spokes and a self-loop at the hub, symmetrized,
  // through connected components: one component, whatever the model.
  EdgeList graph(10);
  for (VertexId v = 1; v < 10; ++v) {
    graph.AddEdge(0, v, 1.0);
    graph.AddEdge(0, v, 1.0);  // duplicate spoke
    graph.AddEdge(v, 0, 1.0);
  }
  graph.AddEdge(0, 0, 1.0);  // hub self-loop
  const std::vector<double> comp =
      RunEverywhere(graph, 2, [] { return algos::ConnectedComponents(); });
  ASSERT_EQ(comp.size(), 10u);
  for (std::size_t v = 0; v < comp.size(); ++v) {
    EXPECT_EQ(comp[v], comp[0]) << "vertex " << v;
  }
}

TEST(DegenerateInput, MoreIntervalsThanOccupiedOnes) {
  // p far larger than the occupied vertex range: most sub-blocks are empty
  // files. All models must read them as empty, not fail.
  EdgeList graph(8);
  graph.AddEdge(0, 1, 1.0);
  graph.AddEdge(1, 2, 1.0);
  const std::vector<double> dist =
      RunEverywhere(graph, 8, [] { return algos::Sssp(0); });
  ASSERT_EQ(dist.size(), 8u);
  EXPECT_EQ(dist[0], 0.0);
  EXPECT_EQ(dist[1], 1.0);
  EXPECT_EQ(dist[2], 2.0);
  for (std::size_t v = 3; v < dist.size(); ++v) EXPECT_EQ(dist[v], kInf);
}

}  // namespace
}  // namespace graphsd
