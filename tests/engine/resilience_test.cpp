// End-to-end resilience acceptance tests (DESIGN.md §7): under seeded
// transient storage faults every engine path must produce bit-identical
// results to the fault-free run; corruption must surface as kCorruptData or
// a logged degradation — never a silent wrong answer.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"
#include "io/fault_injector.hpp"
#include "partition/manifest.hpp"

namespace graphsd {
namespace {

using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::ValueOrDie;

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RmatOptions o;
    o.scale = 7;
    o.edge_factor = 6;
    o.max_weight = 5.0;
    t_ = MakeDataset(GenerateRmat(o), dir_.Sub("ds"), 3);
    ds_dir_ = dir_.Sub("ds");
  }

  void TearDown() override { t_.device->set_fault_injector(nullptr); }

  /// Single-threaded engine options for deterministic replay. `on_demand`
  /// picks the SCIU (true) or FCIU (false) I/O model.
  static core::EngineOptions Opts(bool on_demand) {
    core::EngineOptions options;
    options.num_threads = 1;
    if (on_demand) {
      options.force_on_demand = true;
    } else {
      options.enable_selective = false;
    }
    return options;
  }

  std::vector<double> RunPageRank(const core::EngineOptions& options) {
    core::GraphSDEngine engine(*t_.dataset, options);
    algos::PageRank pr(10);
    EXPECT_OK(engine.Run(pr).status());
    return testing::Values(pr, *engine.state());
  }

  std::vector<double> RunBfs(const core::EngineOptions& options) {
    core::GraphSDEngine engine(*t_.dataset, options);
    algos::Bfs bfs(0);
    EXPECT_OK(engine.Run(bfs).status());
    return testing::Values(bfs, *engine.state());
  }

  void CorruptAllNonEmptyEdgeFiles() {
    const auto& manifest = t_.dataset->manifest();
    bool corrupted_any = false;
    for (std::uint32_t i = 0; i < manifest.p; ++i) {
      for (std::uint32_t j = 0; j < manifest.p; ++j) {
        if (manifest.EdgesIn(i, j) == 0) continue;
        FlipByte(partition::SubBlockEdgesPath(ds_dir_, i, j));
        corrupted_any = true;
      }
    }
    ASSERT_TRUE(corrupted_any);
  }

  void FlipByte(const std::string& path) {
    std::string data = ValueOrDie(io::ReadFileToString(path));
    ASSERT_FALSE(data.empty());
    data[0] = static_cast<char>(data[0] ^ 0x01);
    ASSERT_OK(io::WriteStringToFile(path, data));
  }

  TempDir dir_;
  TestDataset t_;
  std::string ds_dir_;
};

// The headline acceptance criterion: a fixed-seed >=1% transient read-fault
// rate must not change a single output bit on either I/O model, and the
// retry counters must show the faults were actually hit and absorbed.
TEST_F(ResilienceTest, TransientReadFaultsLeaveResultsBitIdentical) {
  for (const bool on_demand : {true, false}) {
    SCOPED_TRACE(on_demand ? "SCIU (on-demand)" : "FCIU (full streaming)");
    const core::EngineOptions options = Opts(on_demand);

    t_.device->set_fault_injector(nullptr);
    const std::vector<double> want_pr = RunPageRank(options);
    const std::vector<double> want_bfs = RunBfs(options);

    io::FaultInjector injector(20260805);
    io::FaultRule eio;
    eio.kind = io::FaultKind::kEio;
    eio.op = io::FaultOp::kRead;
    eio.probability = 0.01;
    injector.AddRule(eio);
    io::FaultRule short_read;
    short_read.kind = io::FaultKind::kShortRead;
    short_read.op = io::FaultOp::kRead;
    short_read.probability = 0.005;
    injector.AddRule(short_read);
    io::FaultRule eintr;
    eintr.kind = io::FaultKind::kEintr;
    eintr.op = io::FaultOp::kRead;
    eintr.probability = 0.005;
    injector.AddRule(eintr);
    t_.device->set_fault_injector(&injector);

    const std::uint64_t retries_before = t_.device->stats().Snapshot().retries;
    const std::vector<double> got_pr = RunPageRank(options);
    const std::vector<double> got_bfs = RunBfs(options);

    EXPECT_EQ(got_pr, want_pr);
    EXPECT_EQ(got_bfs, want_bfs);
    EXPECT_GT(injector.faults_injected(), 0u);
    EXPECT_GT(t_.device->stats().Snapshot().retries, retries_before);
  }
}

// A flipped payload byte must fail the run with kCorruptData on the full
// streaming path...
TEST_F(ResilienceTest, CorruptEdgePayloadFailsFullStreamingRun) {
  CorruptAllNonEmptyEdgeFiles();
  core::GraphSDEngine engine(*t_.dataset, Opts(/*on_demand=*/false));
  algos::PageRank pr(10);
  const auto result = engine.Run(pr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptData);
}

// ...and on the on-demand path, where the one-time sub-block verification
// catches it, degradation to full streaming is attempted, and the replay
// hits the same corruption — the error still surfaces, never a wrong answer.
TEST_F(ResilienceTest, CorruptEdgePayloadFailsOnDemandRun) {
  CorruptAllNonEmptyEdgeFiles();
  core::GraphSDEngine engine(*t_.dataset, Opts(/*on_demand=*/true));
  algos::Bfs bfs(0);
  const auto result = engine.Run(bfs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptData);
}

// Corrupt *index* files only hurt the on-demand model; the engine must
// degrade to full streaming and still produce the exact baseline answer.
TEST_F(ResilienceTest, CorruptIndexDegradesToFullStreaming) {
  const core::EngineOptions options = Opts(/*on_demand=*/true);
  std::vector<double> want;
  {
    core::GraphSDEngine engine(*t_.dataset, options);
    algos::Sssp sssp(0);
    ASSERT_OK(engine.Run(sssp).status());
    want = testing::Values(sssp, *engine.state());
  }

  const auto& manifest = t_.dataset->manifest();
  for (std::uint32_t i = 0; i < manifest.p; ++i) {
    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      FlipByte(partition::SubBlockIndexPath(ds_dir_, i, j));
    }
  }
  core::GraphSDEngine engine(*t_.dataset, options);
  algos::Sssp sssp(0);
  const auto result = engine.Run(sssp);
  ASSERT_OK(result.status());
  EXPECT_GE(ValueOrDie(result).degraded_rounds, 1u);
  EXPECT_GT(t_.device->stats().Snapshot().checksum_failures, 0u);
  testing::ExpectValuesNear(testing::Values(sssp, *engine.state()), want,
                            1e-12);
}

// Space exhaustion is not transient: the first injected ENOSPC must abort
// the run cleanly with kResourceExhausted and no retry churn.
TEST_F(ResilienceTest, EnospcOnWriteFailsCleanly) {
  io::FaultInjector injector(11);
  io::FaultRule rule;
  rule.kind = io::FaultKind::kEnospc;
  rule.op = io::FaultOp::kWrite;
  rule.nth = 1;
  injector.AddRule(rule);
  t_.device->set_fault_injector(&injector);

  const std::uint64_t retries_before = t_.device->stats().Snapshot().retries;
  core::GraphSDEngine engine(*t_.dataset, Opts(/*on_demand=*/false));
  algos::Bfs bfs(0);
  const auto result = engine.Run(bfs);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(t_.device->stats().Snapshot().retries, retries_before);
}

}  // namespace
}  // namespace graphsd
