// The re-implemented comparison systems: correct results, and the
// characteristic I/O behaviours the paper attributes to each.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::ExpectValuesNear;
using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

class BaselineEnginesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RmatOptions o;
    o.scale = 10;
    o.edge_factor = 8;
    o.max_weight = 10.0;
    t_ = MakeDataset(GenerateRmat(o), dir_.Sub("ds"), 6);
  }
  TempDir dir_;
  TestDataset t_;
};

TEST_F(BaselineEnginesTest, HusGraphComputesCorrectSssp) {
  const auto reference = ReferenceSssp(t_.graph, 0);
  baselines::HusGraphEngine engine(*t_.dataset);
  algos::Sssp sssp(0);
  const auto report = ValueOrDie(engine.Run(sssp));
  EXPECT_EQ(report.engine, "HUS-Graph");
  ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
}

TEST_F(BaselineEnginesTest, LumosComputesCorrectSssp) {
  const auto reference = ReferenceSssp(t_.graph, 0);
  baselines::LumosEngine engine(*t_.dataset);
  algos::Sssp sssp(0);
  const auto report = ValueOrDie(engine.Run(sssp));
  EXPECT_EQ(report.engine, "Lumos");
  ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
}

TEST_F(BaselineEnginesTest, BothComputeCorrectPageRank) {
  const auto reference = ReferencePageRank(t_.graph, 5);
  {
    baselines::HusGraphEngine engine(*t_.dataset);
    algos::PageRank pr(5);
    (void)ValueOrDie(engine.Run(pr));
    ExpectValuesNear(Values(pr, *engine.state()), reference, 1e-11);
  }
  {
    baselines::LumosEngine engine(*t_.dataset);
    algos::PageRank pr(5);
    (void)ValueOrDie(engine.Run(pr));
    ExpectValuesNear(Values(pr, *engine.state()), reference, 1e-11);
  }
}

// HUS-Graph has no cross-iteration: one iteration per round, always.
TEST_F(BaselineEnginesTest, HusGraphRunsOneIterationPerRound) {
  baselines::HusGraphEngine engine(*t_.dataset);
  algos::PageRank pr(6);
  const auto report = ValueOrDie(engine.Run(pr));
  EXPECT_EQ(report.rounds, 6u);
  EXPECT_EQ(report.buffer_hits, 0u);
}

// Lumos folds two iterations into each round but never buffers.
TEST_F(BaselineEnginesTest, LumosFoldsTwoIterationsPerRound) {
  baselines::LumosEngine engine(*t_.dataset);
  algos::PageRank pr(6);
  const auto report = ValueOrDie(engine.Run(pr));
  EXPECT_EQ(report.rounds, 3u);
  EXPECT_EQ(report.buffer_hits, 0u);
}

// Lumos streams everything every round: its per-round read volume on a
// nearly-drained frontier is still the full grid.
TEST_F(BaselineEnginesTest, LumosReadsFullGridEvenWhenFrontierIsTiny) {
  baselines::LumosEngine engine(*t_.dataset);
  algos::Sssp sssp(0);
  const auto report = ValueOrDie(engine.Run(sssp));
  const std::uint64_t full_grid =
      t_.dataset->num_edges() * (kEdgeBytes + kWeightBytes);
  for (const auto& round : report.per_round) {
    if (round.model == core::RoundModel::kSkipped) continue;
    EXPECT_GE(round.read_bytes, full_grid);
  }
}

// HUS-Graph's hybrid strategy switches to on-demand on small frontiers.
TEST_F(BaselineEnginesTest, HusGraphUsesOnDemandOnSmallFrontiers) {
  baselines::HusGraphEngine engine(*t_.dataset);
  algos::Sssp sssp(0);
  const auto report = ValueOrDie(engine.Run(sssp));
  bool saw_on_demand = false;
  for (const auto& round : report.per_round) {
    if (round.model == core::RoundModel::kSciu) saw_on_demand = true;
    EXPECT_NE(round.model, core::RoundModel::kFciu);  // never cross-iterates
  }
  EXPECT_TRUE(saw_on_demand);
}

// The paper's headline ordering at test scale: GraphSD's modeled I/O time
// beats both baselines for a frontier algorithm.
TEST_F(BaselineEnginesTest, GraphSDBeatsBothBaselinesOnSssp) {
  algos::Sssp sssp(0);
  core::GraphSDEngine gsd(*t_.dataset, {});
  const auto r_gsd = ValueOrDie(gsd.Run(sssp));
  baselines::HusGraphEngine hus(*t_.dataset);
  const auto r_hus = ValueOrDie(hus.Run(sssp));
  baselines::LumosEngine lumos(*t_.dataset);
  const auto r_lumos = ValueOrDie(lumos.Run(sssp));
  EXPECT_LE(r_gsd.io_seconds, r_hus.io_seconds * 1.001);
  EXPECT_LT(r_gsd.io_seconds, r_lumos.io_seconds);
}

// ...and for PageRank (all-active), GraphSD still beats Lumos via buffering.
TEST_F(BaselineEnginesTest, GraphSDBeatsLumosOnPageRank) {
  algos::PageRank pr(6);
  core::GraphSDEngine gsd(*t_.dataset, {});
  const auto r_gsd = ValueOrDie(gsd.Run(pr));
  baselines::LumosEngine lumos(*t_.dataset);
  algos::PageRank pr2(6);
  const auto r_lumos = ValueOrDie(lumos.Run(pr2));
  EXPECT_LT(r_gsd.io_seconds, r_lumos.io_seconds);
}

// Baselines accept the iteration cap like the main engine.
TEST_F(BaselineEnginesTest, MaxIterationsRespected) {
  baselines::HusGraphEngine::Options options;
  options.max_iterations = 3;
  baselines::HusGraphEngine engine(*t_.dataset, options);
  algos::PageRank pr(100);
  const auto report = ValueOrDie(engine.Run(pr));
  EXPECT_EQ(report.iterations, 3u);
}

}  // namespace
}  // namespace graphsd
