// I/O accounting invariants of the engine and its reports.
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::ValueOrDie;

class EngineIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RmatOptions o;
    o.scale = 9;
    o.edge_factor = 8;
    o.max_weight = 10.0;
    t_ = MakeDataset(GenerateRmat(o), dir_.Sub("ds"), 4);
  }
  TempDir dir_;
  TestDataset t_;
};

TEST_F(EngineIoTest, ReportTotalsEqualPerRoundSums) {
  core::GraphSDEngine engine(*t_.dataset, {});
  algos::Sssp sssp(0);
  const auto report = ValueOrDie(engine.Run(sssp));
  double io = 0;
  double compute = 0;
  double scheduler = 0;
  std::uint32_t iterations = 0;
  std::uint64_t read_bytes = 0;
  for (const auto& round : report.per_round) {
    io += round.io_seconds;
    compute += round.compute_seconds;
    scheduler += round.scheduler_seconds;
    iterations += round.iterations_covered;
    read_bytes += round.read_bytes;
  }
  EXPECT_NEAR(report.io_seconds, io, 1e-9);
  EXPECT_NEAR(report.compute_seconds, compute, 1e-9);
  EXPECT_NEAR(report.scheduler_seconds, scheduler, 1e-9);
  EXPECT_EQ(report.iterations, iterations);
  EXPECT_EQ(report.io.TotalReadBytes(), read_bytes);
  EXPECT_EQ(report.rounds, report.per_round.size());
}

TEST_F(EngineIoTest, ReportNamesEngineAlgorithmDataset) {
  core::GraphSDEngine engine(*t_.dataset, {});
  algos::Bfs bfs(0);
  const auto report = ValueOrDie(engine.Run(bfs));
  EXPECT_EQ(report.engine, "GraphSD");
  EXPECT_EQ(report.algorithm, "bfs");
  EXPECT_EQ(report.dataset, "test");
  EXPECT_FALSE(report.Summary().empty());
}

TEST_F(EngineIoTest, VertexValueTrafficChargedEveryRound) {
  core::GraphSDEngine engine(*t_.dataset, {});
  algos::PageRank pr(4);
  const auto report = ValueOrDie(engine.Run(pr));
  const std::uint64_t values_bytes =
      static_cast<std::uint64_t>(t_.dataset->num_vertices()) * 8;
  // Initial persist + one load and one persist per round.
  EXPECT_GE(report.io.TotalWriteBytes(), values_bytes * report.rounds);
  EXPECT_GE(report.io.TotalReadBytes(), values_bytes * report.rounds);
}

TEST_F(EngineIoTest, UnweightedAlgorithmNeverReadsWeightFiles) {
  // The dataset is weighted; BFS must stream only the 8-byte edge records.
  core::EngineOptions options;
  options.enable_selective = false;  // full loads: easy arithmetic
  options.enable_cross_iteration = false;
  options.enable_buffering = false;
  core::GraphSDEngine engine(*t_.dataset, options);
  algos::Bfs bfs(0);
  const auto report = ValueOrDie(engine.Run(bfs));
  const std::uint64_t edge_bytes = t_.dataset->num_edges() * kEdgeBytes;
  const std::uint64_t values_bytes =
      static_cast<std::uint64_t>(t_.dataset->num_vertices()) * 8;
  // Edges once per round + values; weight bytes would add 50% more.
  const std::uint64_t expected_max =
      (edge_bytes + 2 * values_bytes) * report.rounds + values_bytes;
  EXPECT_LE(report.io.TotalReadBytes(), expected_max);
}

TEST_F(EngineIoTest, SsspReadsWeightsToo) {
  core::EngineOptions options;
  options.enable_selective = false;
  options.enable_cross_iteration = false;
  options.enable_buffering = false;
  options.max_iterations = 1;
  core::GraphSDEngine engine(*t_.dataset, options);
  algos::Sssp sssp(0);
  const auto report = ValueOrDie(engine.Run(sssp));
  const std::uint64_t with_weights =
      t_.dataset->num_edges() * (kEdgeBytes + kWeightBytes);
  EXPECT_GE(report.io.TotalReadBytes(), with_weights);
}

TEST_F(EngineIoTest, SciuRoundsReadLessThanFullGrid) {
  core::EngineOptions options;
  options.force_on_demand = true;
  core::GraphSDEngine engine(*t_.dataset, options);
  algos::Sssp sssp(0);
  const auto report = ValueOrDie(engine.Run(sssp));
  const std::uint64_t full =
      t_.dataset->num_edges() * (kEdgeBytes + kWeightBytes);
  bool some_small_round = false;
  for (const auto& round : report.per_round) {
    EXPECT_EQ(round.model == core::RoundModel::kSciu ||
                  round.model == core::RoundModel::kSkipped,
              true);
    if (round.read_bytes > 0 && round.read_bytes < full / 2) {
      some_small_round = true;
    }
  }
  EXPECT_TRUE(some_small_round);
}

TEST_F(EngineIoTest, ScratchDirRedirectsValueFile) {
  TempDir scratch;
  core::EngineOptions options;
  options.scratch_dir = scratch.path();
  core::GraphSDEngine engine(*t_.dataset, options);
  algos::Bfs bfs(0);
  (void)ValueOrDie(engine.Run(bfs));
  EXPECT_TRUE(io::PathExists(scratch.path() + "/values_bfs.bin"));
}

TEST_F(EngineIoTest, IndexlessDatasetDegradesToFullModel) {
  // Build a Lumos-style layout (no index) and check GraphSD still runs,
  // with selective silently disabled.
  TempDir dir2;
  auto device = io::MakeSimulatedDevice();
  partition::GridBuildOptions build;
  build.num_intervals = 4;
  build.sort_sub_blocks = false;
  build.build_index = false;
  (void)ValueOrDie(partition::BuildGrid(t_.graph, *device, dir2.Sub("ds"), build));
  const auto ds = ValueOrDie(partition::GridDataset::Open(*device, dir2.Sub("ds")));
  core::GraphSDEngine engine(ds, {});
  algos::Bfs bfs(0);
  const auto report = ValueOrDie(engine.Run(bfs));
  for (const auto& round : report.per_round) {
    EXPECT_NE(round.model, core::RoundModel::kSciu);
  }
  const auto reference = ReferenceBfs(t_.graph, 0);
  for (VertexId v = 0; v < t_.graph.num_vertices(); ++v) {
    const std::uint64_t want =
        reference[v] == kUnreachedLevel ? UINT64_MAX : reference[v];
    EXPECT_EQ(algos::Bfs::LevelOf(*engine.state(), v), want);
  }
}

TEST_F(EngineIoTest, RealSsdBackendMatchesPosixBitwise) {
  // The direct-I/O bounce path and gap-merged vectored reads are purely
  // physical concerns: a run on the real:ssd backend must return exactly
  // the values of a plain posix run, on both the streaming path and the
  // on-demand (scattered-run ReadRuns) path, with parallel compute on.
  for (const bool on_demand : {false, true}) {
    std::optional<std::vector<double>> reference;
    for (const char* kind : {"posix", "real:ssd"}) {
      SCOPED_TRACE(std::string(kind) + (on_demand ? " on_demand" : " auto"));
      auto device = ValueOrDie(io::MakeDeviceForKind(kind));
      const auto ds =
          ValueOrDie(partition::GridDataset::Open(*device, dir_.Sub("ds")));
      TempDir scratch;
      core::EngineOptions options;
      options.force_on_demand = on_demand;
      options.compute_threads = 4;
      options.scratch_dir = scratch.path();
      core::GraphSDEngine engine(ds, options);
      algos::Sssp sssp(0);
      (void)ValueOrDie(engine.Run(sssp));
      const std::vector<double> values =
          testing::Values(sssp, *engine.state());
      if (!reference.has_value()) {
        reference = values;
        continue;
      }
      ASSERT_EQ(values.size(), reference->size());
      for (std::size_t v = 0; v < values.size(); ++v) {
        EXPECT_EQ(values[v], (*reference)[v]) << "vertex " << v;
      }
    }
  }
}

TEST_F(EngineIoTest, PerRoundRecordingCanBeDisabled) {
  core::EngineOptions options;
  options.record_per_round = false;
  core::GraphSDEngine engine(*t_.dataset, options);
  algos::Bfs bfs(0);
  const auto report = ValueOrDie(engine.Run(bfs));
  EXPECT_TRUE(report.per_round.empty());
  EXPECT_GT(report.rounds, 0u);
}

}  // namespace
}  // namespace graphsd
