// Ablation behaviour: the paper's §5.4 claims, verified at test scale.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::ValueOrDie;

core::ExecutionReport RunSssp(const TestDataset& t,
                              const core::EngineOptions& options) {
  core::GraphSDEngine engine(*t.dataset, options);
  algos::Sssp sssp(0);
  return ValueOrDie(engine.Run(sssp));
}

core::ExecutionReport RunPr(const TestDataset& t,
                            const core::EngineOptions& options,
                            std::uint32_t iterations) {
  core::GraphSDEngine engine(*t.dataset, options);
  algos::PageRank pr(iterations);
  return ValueOrDie(engine.Run(pr));
}

class AblationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RmatOptions o;
    o.scale = 10;
    o.edge_factor = 8;
    o.max_weight = 10.0;
    t_ = MakeDataset(GenerateRmat(o), dir_.Sub("ds"), 6);
  }
  TempDir dir_;
  TestDataset t_;
};

// Cross-iteration halves PageRank's loading rounds (2 iterations/round).
TEST_F(AblationTest, CrossIterationHalvesPageRankRounds) {
  core::EngineOptions with;
  core::EngineOptions without;
  without.enable_cross_iteration = false;
  const auto r_with = RunPr(t_, with, 6);
  const auto r_without = RunPr(t_, without, 6);
  EXPECT_EQ(r_with.rounds, 3u);
  EXPECT_EQ(r_without.rounds, 6u);
  EXPECT_EQ(r_with.iterations, 6u);
  EXPECT_EQ(r_without.iterations, 6u);
}

// ...and reduces PageRank read traffic (each FCIU round reads at most the
// full grid + secondary half instead of two full grids).
TEST_F(AblationTest, CrossIterationReducesPageRankReadBytes) {
  core::EngineOptions with;
  core::EngineOptions without;
  without.enable_cross_iteration = false;
  without.enable_buffering = false;
  core::EngineOptions with_nobuf;
  with_nobuf.enable_buffering = false;
  const auto r_with = RunPr(t_, with_nobuf, 6);
  const auto r_without = RunPr(t_, without, 6);
  EXPECT_LT(r_with.io.TotalReadBytes(), r_without.io.TotalReadBytes());
}

// Selective processing reduces SSSP traffic versus always-full (b2).
TEST_F(AblationTest, SelectiveReducesSsspTraffic) {
  core::EngineOptions gsd;
  core::EngineOptions b2;
  b2.enable_selective = false;
  const auto r_gsd = RunSssp(t_, gsd);
  const auto r_b2 = RunSssp(t_, b2);
  EXPECT_LT(r_gsd.io.TotalReadBytes(), r_b2.io.TotalReadBytes());
  EXPECT_LT(r_gsd.io_seconds, r_b2.io_seconds);
}

// GraphSD (both mechanisms) beats both single-mechanism ablations on
// modeled time — the Figure 9 ordering.
TEST_F(AblationTest, Figure9Ordering) {
  core::EngineOptions gsd;
  core::EngineOptions b1;
  b1.enable_cross_iteration = false;
  core::EngineOptions b2;
  b2.enable_selective = false;
  const auto r_gsd = RunSssp(t_, gsd);
  const auto r_b1 = RunSssp(t_, b1);
  const auto r_b2 = RunSssp(t_, b2);
  EXPECT_LE(r_gsd.io_seconds, r_b1.io_seconds * 1.001);
  EXPECT_LT(r_gsd.io_seconds, r_b2.io_seconds);
}

// The adaptive scheduler must match or beat both forced models (Fig. 10).
TEST_F(AblationTest, AdaptiveBeatsForcedModels) {
  core::EngineOptions adaptive;
  core::EngineOptions b3;  // always full
  b3.enable_selective = false;
  core::EngineOptions b4;  // always on-demand
  b4.force_on_demand = true;
  const auto r_adaptive = RunSssp(t_, adaptive);
  const auto r_b3 = RunSssp(t_, b3);
  const auto r_b4 = RunSssp(t_, b4);
  EXPECT_LE(r_adaptive.io_seconds,
            std::min(r_b3.io_seconds, r_b4.io_seconds) * 1.10);
}

// Buffering serves secondary sub-blocks from memory (Fig. 12 mechanism).
TEST_F(AblationTest, BufferingProducesHitsAndSavesReads) {
  core::EngineOptions with;
  with.enable_selective = false;  // force FCIU rounds so the buffer matters
  with.buffer_capacity_bytes = 1 << 26;  // roomy: every secondary fits
  core::EngineOptions without = with;
  without.enable_buffering = false;
  const auto r_with = RunPr(t_, with, 6);
  const auto r_without = RunPr(t_, without, 6);
  EXPECT_GT(r_with.buffer_hits, 0u);
  EXPECT_EQ(r_without.buffer_hits, 0u);
  EXPECT_LT(r_with.io.TotalReadBytes(), r_without.io.TotalReadBytes());
  EXPECT_GT(r_with.buffer_bytes_saved, 0u);
}

// A tiny buffer cannot help much but must not break anything.
TEST_F(AblationTest, TinyBufferDegradesGracefully) {
  core::EngineOptions tiny;
  tiny.enable_selective = false;
  tiny.buffer_capacity_bytes = 64;
  const auto report = RunPr(t_, tiny, 4);
  EXPECT_EQ(report.iterations, 4u);
}

// The scheduler's decision column must be consistent with its own cost
// estimates in every recorded round.
TEST_F(AblationTest, RecordedDecisionsMatchCostEstimates) {
  core::EngineOptions options;
  const auto report = RunSssp(t_, options);
  for (const auto& round : report.per_round) {
    if (round.model == core::RoundModel::kSkipped) continue;
    if (round.cost_full == 0 && round.cost_on_demand == 0) continue;
    if (round.model == core::RoundModel::kSciu) {
      EXPECT_LE(round.cost_on_demand, round.cost_full);
    } else {
      EXPECT_GT(round.cost_on_demand, round.cost_full);
    }
  }
}

// Scheduler overhead is tiny compared to the I/O it saves (Fig. 11 shape).
TEST_F(AblationTest, SchedulerOverheadIsNegligible) {
  core::EngineOptions adaptive;
  core::EngineOptions b3;
  b3.enable_selective = false;
  const auto r_adaptive = RunSssp(t_, adaptive);
  const auto r_b3 = RunSssp(t_, b3);
  const double saved = r_b3.io_seconds - r_adaptive.io_seconds;
  EXPECT_GT(saved, 0.0);
  EXPECT_LT(r_adaptive.scheduler_seconds, saved / 10);
}

}  // namespace
}  // namespace graphsd
