// TSan smoke for the sharded parallel compute path: each executor — SCIU
// (on-demand), FCIU (full streaming) and semi-external — runs with eight
// worker threads and eight destination shards, driving the sharded apply,
// the decode offload and the checksum preverify concurrently, and must
// reproduce the single-threaded run bitwise. Registered in
// tests/CMakeLists.txt as tsan_parallel_compute_smoke so the
// thread-sanitized CI tier covers the compute fan-out without paying for
// the full suite.
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

class ParallelComputeSmoke : public ::testing::Test {
 protected:
  void SetUp() override {
    RmatOptions o;
    o.scale = 9;
    o.edge_factor = 8;
    o.max_weight = 10.0;
    t_ = MakeDataset(GenerateRmat(o), dir_.Sub("ds"), 4);
  }

  std::vector<double> RunWith(core::RoundModelChoice forced,
                              std::size_t threads) {
    core::EngineOptions options;
    options.num_threads = threads;
    options.compute_threads = threads;
    options.semi_external = forced == core::RoundModelChoice::kSemi;
    options.model_override = [forced](std::uint32_t) { return forced; };
    core::GraphSDEngine engine(*t_.dataset, options);
    algos::Sssp sssp(0);
    (void)ValueOrDie(engine.Run(sssp));
    return Values(sssp, *engine.state());
  }

  void ExpectEightShardsBitIdentical(core::RoundModelChoice forced) {
    const std::vector<double> serial = RunWith(forced, 1);
    const std::vector<double> sharded = RunWith(forced, 8);
    ASSERT_EQ(sharded.size(), serial.size());
    for (std::size_t v = 0; v < sharded.size(); ++v) {
      EXPECT_EQ(sharded[v], serial[v]) << "vertex " << v;
    }
  }

  TempDir dir_;
  TestDataset t_;
};

TEST_F(ParallelComputeSmoke, SciuEightShardsBitIdentical) {
  ExpectEightShardsBitIdentical(core::RoundModelChoice::kOnDemand);
}

TEST_F(ParallelComputeSmoke, FciuEightShardsBitIdentical) {
  ExpectEightShardsBitIdentical(core::RoundModelChoice::kFull);
}

TEST_F(ParallelComputeSmoke, SemiEightShardsBitIdentical) {
  ExpectEightShardsBitIdentical(core::RoundModelChoice::kSemi);
}

}  // namespace
}  // namespace graphsd
