// The engine over degree-balanced interval layouts: results must be
// identical to the equal-vertex layout's, and skewed graphs should get
// more balanced sub-block rows.
#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::ExpectValuesNear;
using testing::TempDir;
using testing::Values;
using testing::ValueOrDie;

struct BalancedFixture {
  std::unique_ptr<io::Device> device;
  std::unique_ptr<partition::GridDataset> dataset;
};

BalancedFixture MakeBalanced(const EdgeList& graph, const std::string& dir,
                             std::uint32_t p) {
  BalancedFixture out;
  out.device = io::MakeSimulatedDevice(io::IoCostModel::ScaledHdd());
  partition::GridBuildOptions build;
  build.num_intervals = p;
  build.scheme = partition::IntervalScheme::kBalancedEdges;
  build.name = "balanced";
  (void)ValueOrDie(partition::BuildGrid(graph, *out.device, dir, build));
  out.dataset = std::make_unique<partition::GridDataset>(
      ValueOrDie(partition::GridDataset::Open(*out.device, dir)));
  return out;
}

TEST(BalancedIntervals, SsspIdenticalToEqualVertexLayout) {
  TempDir dir;
  const EdgeList graph = testing::MakeRmatCase();
  BalancedFixture balanced = MakeBalanced(graph, dir.Sub("bal"), 5);
  const auto reference = ReferenceSssp(graph, 0);

  core::GraphSDEngine engine(*balanced.dataset, {});
  algos::Sssp sssp(0);
  (void)ValueOrDie(engine.Run(sssp));
  ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
}

TEST(BalancedIntervals, PageRankIdenticalToReference) {
  TempDir dir;
  const EdgeList graph = testing::MakeRmatCase();
  BalancedFixture balanced = MakeBalanced(graph, dir.Sub("bal"), 5);
  const auto reference = ReferencePageRank(graph, 5);
  core::GraphSDEngine engine(*balanced.dataset, {});
  algos::PageRank pr(5);
  (void)ValueOrDie(engine.Run(pr));
  ExpectValuesNear(Values(pr, *engine.state()), reference, 1e-11);
}

TEST(BalancedIntervals, RowsAreMoreBalancedOnSkewedGraphs) {
  // A star graph: equal-vertex intervals put every edge in row 0;
  // balanced intervals split the hub's row.
  const EdgeList star = GenerateStar(1000);
  TempDir dir;
  auto device = io::MakePosixDevice();

  auto row_imbalance = [&](partition::IntervalScheme scheme,
                           const std::string& sub) {
    partition::GridBuildOptions build;
    build.num_intervals = 4;
    build.scheme = scheme;
    const auto manifest =
        ValueOrDie(partition::BuildGrid(star, *device, dir.Sub(sub), build));
    std::uint64_t max_row = 0;
    for (std::uint32_t i = 0; i < manifest.p; ++i) {
      std::uint64_t row = 0;
      for (std::uint32_t j = 0; j < manifest.p; ++j) {
        row += manifest.EdgesIn(i, j);
      }
      max_row = std::max(max_row, row);
    }
    return max_row;
  };

  const auto equal =
      row_imbalance(partition::IntervalScheme::kEqualVertices, "eq");
  const auto balanced =
      row_imbalance(partition::IntervalScheme::kBalancedEdges, "bal");
  // The star is degenerate (one hub owns every edge), so the best any
  // contiguous-interval scheme can do is isolate the hub; the balanced
  // scheme must not be worse than equal-vertex.
  EXPECT_LE(balanced, equal);
}

}  // namespace
}  // namespace graphsd
