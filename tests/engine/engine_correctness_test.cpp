// Oracle tests: every algorithm on the GraphSD engine must reproduce the
// in-memory reference results on every graph family × interval count.
#include <tuple>

#include <gtest/gtest.h>

#include "engine_test_util.hpp"

namespace graphsd {
namespace {

using testing::ExpectValuesNear;
using testing::GraphCase;
using testing::kGraphCases;
using testing::MakeDataset;
using testing::TempDir;
using testing::TestDataset;
using testing::Values;
using testing::ValueOrDie;

class EngineCorrectness
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {
 protected:
  const GraphCase& Case() const { return kGraphCases[std::get<0>(GetParam())]; }
  std::uint32_t P() const { return std::get<1>(GetParam()); }

  TestDataset Make(const EdgeList& graph) {
    return MakeDataset(graph, dir_.Sub("ds"), P());
  }

  TempDir dir_;
};

TEST_P(EngineCorrectness, SsspMatchesDijkstra) {
  TestDataset t = Make(Case().make());
  const auto reference = ReferenceSssp(t.graph, 0);
  core::GraphSDEngine engine(*t.dataset, {});
  algos::Sssp sssp(0);
  (void)ValueOrDie(engine.Run(sssp));
  ExpectValuesNear(Values(sssp, *engine.state()), reference, 1e-9);
}

TEST_P(EngineCorrectness, BfsMatchesReference) {
  TestDataset t = Make(Case().make());
  const auto reference = ReferenceBfs(t.graph, 0);
  core::GraphSDEngine engine(*t.dataset, {});
  algos::Bfs bfs(0);
  (void)ValueOrDie(engine.Run(bfs));
  for (VertexId v = 0; v < t.graph.num_vertices(); ++v) {
    const std::uint64_t want =
        reference[v] == kUnreachedLevel ? UINT64_MAX : reference[v];
    EXPECT_EQ(algos::Bfs::LevelOf(*engine.state(), v), want) << "vertex " << v;
  }
}

TEST_P(EngineCorrectness, CcMatchesReferenceOnSymmetrizedGraph) {
  const EdgeList sym = Symmetrize(Case().make());
  TestDataset t = Make(sym);
  const auto reference = ReferenceConnectedComponents(sym);
  core::GraphSDEngine engine(*t.dataset, {});
  algos::ConnectedComponents cc;
  (void)ValueOrDie(engine.Run(cc));
  for (VertexId v = 0; v < sym.num_vertices(); ++v) {
    EXPECT_EQ(algos::ConnectedComponents::LabelOf(*engine.state(), v),
              reference[v])
        << "vertex " << v;
  }
}

TEST_P(EngineCorrectness, PageRankMatchesReferenceExactly) {
  TestDataset t = Make(Case().make());
  for (std::uint32_t iterations : {1u, 2u, 5u}) {
    const auto reference = ReferencePageRank(t.graph, iterations);
    core::GraphSDEngine engine(*t.dataset, {});
    algos::PageRank pr(iterations);
    const auto report = ValueOrDie(engine.Run(pr));
    EXPECT_EQ(report.iterations, iterations);
    ExpectValuesNear(Values(pr, *engine.state()), reference, 1e-11);
  }
}

TEST_P(EngineCorrectness, PageRankDeltaConvergesToPageRankFixpoint) {
  TestDataset t = Make(Case().make());
  const auto reference = ReferencePageRank(t.graph, 200);
  core::GraphSDEngine engine(*t.dataset, {});
  algos::PageRankDelta prd(1e-12);
  (void)ValueOrDie(engine.Run(prd));
  ExpectValuesNear(Values(prd, *engine.state()), reference, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Families, EngineCorrectness,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Values(1u, 3u, 8u)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint32_t>>& info) {
      return std::string(kGraphCases[std::get<0>(info.param)].name) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

// Degenerate shapes that exercise boundary handling.
TEST(EngineCorrectnessEdgeCases, TwoVertexGraph) {
  TempDir dir;
  EdgeList g(2);
  g.AddEdge(0, 1, 3.0f);
  TestDataset t = MakeDataset(g, dir.Sub("ds"), 2);
  core::GraphSDEngine engine(*t.dataset, {});
  algos::Sssp sssp(0);
  (void)ValueOrDie(engine.Run(sssp));
  EXPECT_DOUBLE_EQ(sssp.ValueOf(*engine.state(), 1), 3.0);
}

TEST(EngineCorrectnessEdgeCases, RootWithNoOutEdgesTerminatesImmediately) {
  TempDir dir;
  EdgeList g(5);
  g.AddEdge(0, 1, 1.0f);
  g.AddEdge(1, 2, 1.0f);
  TestDataset t = MakeDataset(g, dir.Sub("ds"), 2);
  core::GraphSDEngine engine(*t.dataset, {});
  algos::Sssp sssp(4);  // vertex 4 has no edges at all
  const auto report = ValueOrDie(engine.Run(sssp));
  EXPECT_LE(report.iterations, 2u);
  EXPECT_DOUBLE_EQ(sssp.ValueOf(*engine.state(), 4), 0.0);
  EXPECT_TRUE(std::isinf(sssp.ValueOf(*engine.state(), 0)));
}

TEST(EngineCorrectnessEdgeCases, MaxIterationsCapsBellmanFord) {
  TempDir dir;
  const EdgeList g = GeneratePath(50, 1.0);
  TestDataset t = MakeDataset(g, dir.Sub("ds"), 4);
  core::EngineOptions options;
  options.max_iterations = 10;
  core::GraphSDEngine engine(*t.dataset, options);
  algos::Sssp sssp(0);
  const auto report = ValueOrDie(engine.Run(sssp));
  EXPECT_LE(report.iterations, 10u);
  // The wavefront cannot have travelled more than 10 hops... but note the
  // cross-iteration update may legitimately reach exactly iteration-10
  // values. Vertices beyond the cap must be untouched.
  EXPECT_TRUE(std::isinf(sssp.ValueOf(*engine.state(), 49)));
}

TEST(EngineCorrectnessEdgeCases, RerunningSameEngineObjectIsClean) {
  TempDir dir;
  const EdgeList g = testing::MakeRmatCase();
  TestDataset t = MakeDataset(g, dir.Sub("ds"), 3);
  core::GraphSDEngine engine(*t.dataset, {});
  algos::Bfs bfs(0);
  const auto first = ValueOrDie(engine.Run(bfs));
  const auto again = ValueOrDie(engine.Run(bfs));
  EXPECT_EQ(first.iterations, again.iterations);
  const auto reference = ReferenceBfs(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t want =
        reference[v] == kUnreachedLevel ? UINT64_MAX : reference[v];
    EXPECT_EQ(algos::Bfs::LevelOf(*engine.state(), v), want);
  }
}

}  // namespace
}  // namespace graphsd
