// Shared helpers for the engine-level test suites.
#pragma once

#include <cmath>
#include <memory>

#include "algos/bfs.hpp"
#include "algos/connected_components.hpp"
#include "algos/pagerank.hpp"
#include "algos/pagerank_delta.hpp"
#include "algos/sssp.hpp"
#include "baselines/hus_graph_engine.hpp"
#include "baselines/lumos_engine.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/reference_algorithms.hpp"
#include "testing_util.hpp"

namespace graphsd::testing {

/// A dataset + device bundle for one graph.
struct TestDataset {
  std::unique_ptr<io::Device> device;
  std::unique_ptr<partition::GridDataset> dataset;
  EdgeList graph;
};

inline TestDataset MakeDataset(EdgeList graph, const std::string& dir,
                               std::uint32_t p,
                               const std::string& codec = "none") {
  TestDataset out;
  // Scaled HDD profile: test graphs are tiny, so the seek cost is scaled to
  // keep the scheduler's on-demand/full crossover where the paper's is.
  out.device = io::MakeSimulatedDevice(io::IoCostModel::ScaledHdd());
  BuildTestGrid(graph, *out.device, dir, p, "test", codec);
  out.dataset = std::make_unique<partition::GridDataset>(
      ValueOrDie(partition::GridDataset::Open(*out.device, dir)));
  out.graph = std::move(graph);
  return out;
}

/// Extracts each vertex's value through the program.
inline std::vector<double> Values(const core::Program& program,
                                  const core::VertexState& state) {
  std::vector<double> out(state.num_vertices());
  for (VertexId v = 0; v < state.num_vertices(); ++v) {
    out[v] = program.ValueOf(state, v);
  }
  return out;
}

/// Compares two value vectors; infinities compare equal to each other.
inline void ExpectValuesNear(const std::vector<double>& got,
                             const std::vector<double>& want,
                             double tolerance) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    if (std::isinf(want[v])) {
      EXPECT_TRUE(std::isinf(got[v])) << "vertex " << v;
    } else {
      EXPECT_NEAR(got[v], want[v], tolerance) << "vertex " << v;
    }
  }
}

/// The graph families the parameterized engine tests sweep over.
struct GraphCase {
  const char* name;
  bool weighted;
  EdgeList (*make)();
};

inline EdgeList MakeRmatCase() {
  RmatOptions o;
  o.scale = 8;
  o.edge_factor = 6;
  o.max_weight = 10.0;
  return GenerateRmat(o);
}
inline EdgeList MakeWebCase() {
  WebGraphOptions o;
  o.num_vertices = 400;
  o.avg_degree = 6;
  o.max_weight = 10.0;
  return GenerateWebGraph(o);
}
inline EdgeList MakePathCase() { return GeneratePath(200, 1.5); }
inline EdgeList MakeStarCase() { return GenerateStar(150, 2.0); }
inline EdgeList MakeGridCase() { return GenerateGrid2D(15, 15, 3, 4.0); }
inline EdgeList MakeErCase() {
  ErdosRenyiOptions o;
  o.num_vertices = 300;
  o.num_edges = 2500;
  o.max_weight = 10.0;
  return GenerateErdosRenyi(o);
}

inline const GraphCase kGraphCases[] = {
    {"rmat", true, MakeRmatCase},   {"web", true, MakeWebCase},
    {"path", true, MakePathCase},   {"star", true, MakeStarCase},
    {"grid", true, MakeGridCase},   {"er", true, MakeErCase},
};

}  // namespace graphsd::testing
