#include "io/file.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "testing_util.hpp"

namespace graphsd::io {
namespace {

using testing::TempDir;
using testing::ValueOrDie;

std::span<const std::uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(File, WriteThenReadRoundTrip) {
  TempDir dir;
  const std::string path = dir.Sub("data.bin");
  {
    File f = ValueOrDie(File::Open(path, OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, Bytes("hello world")));
    ASSERT_OK(f.Sync());
  }
  File f = ValueOrDie(File::Open(path, OpenMode::kRead));
  EXPECT_EQ(ValueOrDie(f.Size()), 11u);
  std::string out(5, '\0');
  ASSERT_OK(f.ReadAt(6, {reinterpret_cast<std::uint8_t*>(out.data()), 5}));
  EXPECT_EQ(out, "world");
}

TEST(File, OpenMissingFileFails) {
  const auto result = File::Open("/nonexistent/nope.bin", OpenMode::kRead);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(File, ReadPastEndFails) {
  TempDir dir;
  const std::string path = dir.Sub("short.bin");
  {
    File f = ValueOrDie(File::Open(path, OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, Bytes("abc")));
  }
  File f = ValueOrDie(File::Open(path, OpenMode::kRead));
  std::uint8_t buf[10];
  const Status s = f.ReadAt(0, buf);
  EXPECT_FALSE(s.ok());
}

TEST(File, WriteModeTruncates) {
  TempDir dir;
  const std::string path = dir.Sub("t.bin");
  {
    File f = ValueOrDie(File::Open(path, OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, Bytes("0123456789")));
  }
  {
    File f = ValueOrDie(File::Open(path, OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, Bytes("ab")));
  }
  File f = ValueOrDie(File::Open(path, OpenMode::kRead));
  EXPECT_EQ(ValueOrDie(f.Size()), 2u);
}

TEST(File, AppendExtends) {
  TempDir dir;
  const std::string path = dir.Sub("a.bin");
  File f = ValueOrDie(File::Open(path, OpenMode::kReadWrite));
  ASSERT_OK(f.Append(Bytes("abc")));
  ASSERT_OK(f.Append(Bytes("def")));
  EXPECT_EQ(ValueOrDie(f.Size()), 6u);
  std::string out(6, '\0');
  ASSERT_OK(f.ReadAt(0, {reinterpret_cast<std::uint8_t*>(out.data()), 6}));
  EXPECT_EQ(out, "abcdef");
}

TEST(File, TruncateShrinksAndExtends) {
  TempDir dir;
  File f = ValueOrDie(File::Open(dir.Sub("t.bin"), OpenMode::kReadWrite));
  ASSERT_OK(f.WriteAt(0, Bytes("0123456789")));
  ASSERT_OK(f.Truncate(4));
  EXPECT_EQ(ValueOrDie(f.Size()), 4u);
  ASSERT_OK(f.Truncate(100));
  EXPECT_EQ(ValueOrDie(f.Size()), 100u);
}

TEST(File, MoveTransfersDescriptor) {
  TempDir dir;
  File a = ValueOrDie(File::Open(dir.Sub("m.bin"), OpenMode::kWrite));
  ASSERT_TRUE(a.is_open());
  File b = std::move(a);
  EXPECT_TRUE(b.is_open());
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move)
  ASSERT_OK(b.WriteAt(0, Bytes("x")));
}

TEST(FileHelpers, PathExistsAndRemove) {
  TempDir dir;
  const std::string path = dir.Sub("exists.bin");
  EXPECT_FALSE(PathExists(path));
  { (void)ValueOrDie(File::Open(path, OpenMode::kWrite)); }
  EXPECT_TRUE(PathExists(path));
  ASSERT_OK(RemoveFile(path));
  EXPECT_FALSE(PathExists(path));
  ASSERT_OK(RemoveFile(path));  // idempotent
}

TEST(FileHelpers, MakeDirectoriesRecursive) {
  TempDir dir;
  const std::string deep = dir.Sub("a/b/c");
  ASSERT_OK(MakeDirectories(deep));
  EXPECT_TRUE(PathExists(deep));
  ASSERT_OK(MakeDirectories(deep));  // idempotent
}

TEST(FileHelpers, RemoveTreeRecursive) {
  TempDir dir;
  const std::string deep = dir.Sub("x/y");
  ASSERT_OK(MakeDirectories(deep));
  ASSERT_OK(WriteStringToFile(deep + "/f.txt", "hi"));
  ASSERT_OK(RemoveTree(dir.Sub("x")));
  EXPECT_FALSE(PathExists(dir.Sub("x")));
}

TEST(FileHelpers, StringRoundTrip) {
  TempDir dir;
  const std::string path = dir.Sub("s.txt");
  ASSERT_OK(WriteStringToFile(path, "line1\nline2\n"));
  EXPECT_EQ(ValueOrDie(ReadFileToString(path)), "line1\nline2\n");
}

TEST(FileHelpers, WriteStringIsAtomicReplacement) {
  TempDir dir;
  const std::string path = dir.Sub("s.txt");
  ASSERT_OK(WriteStringToFile(path, "old"));
  ASSERT_OK(WriteStringToFile(path, "new contents"));
  EXPECT_EQ(ValueOrDie(ReadFileToString(path)), "new contents");
  EXPECT_FALSE(PathExists(path + ".tmp"));
}

TEST(FileHelpers, WriteStringCleansUpTempOnRenameFailure) {
  TempDir dir;
  // A non-empty directory at the target path makes the final rename fail
  // after the temp file has already been written.
  const std::string target = dir.Sub("occupied");
  ASSERT_OK(MakeDirectories(target + "/child"));
  const Status status = WriteStringToFile(target, "payload");
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(PathExists(target + ".tmp"));
}

TEST(File, ReadVAtScattersContiguousRange) {
  TempDir dir;
  const std::string path = dir.Sub("v.bin");
  std::vector<std::uint8_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  {
    File f = ValueOrDie(File::Open(path, OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, data));
  }
  File f = ValueOrDie(File::Open(path, OpenMode::kRead));
  std::vector<std::uint8_t> a(11), b(0), c(301), d(1000);
  const std::span<std::uint8_t> bufs[] = {a, b, c, d};
  ASSERT_OK(f.ReadVAt(100, bufs));
  EXPECT_TRUE(std::equal(a.begin(), a.end(), data.begin() + 100));
  EXPECT_TRUE(std::equal(c.begin(), c.end(), data.begin() + 111));
  EXPECT_TRUE(std::equal(d.begin(), d.end(), data.begin() + 412));
}

TEST(File, ReadVAtPastEofIsShortRead) {
  TempDir dir;
  const std::string path = dir.Sub("v.bin");
  {
    File f = ValueOrDie(File::Open(path, OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, std::vector<std::uint8_t>(64)));
  }
  File f = ValueOrDie(File::Open(path, OpenMode::kRead));
  std::vector<std::uint8_t> a(32), b(64);
  const std::span<std::uint8_t> bufs[] = {a, b};
  EXPECT_EQ(f.ReadVAt(0, bufs).code(), StatusCode::kIoError);
}

TEST(File, ReadAtMostStopsAtEofWithoutError) {
  TempDir dir;
  const std::string path = dir.Sub("m.bin");
  {
    File f = ValueOrDie(File::Open(path, OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, std::vector<std::uint8_t>(100, 0xAB)));
  }
  File f = ValueOrDie(File::Open(path, OpenMode::kRead));
  std::vector<std::uint8_t> buf(256);
  EXPECT_EQ(ValueOrDie(f.ReadAtMost(0, buf)), 100u);
  EXPECT_EQ(buf[99], 0xAB);
  EXPECT_EQ(ValueOrDie(f.ReadAtMost(100, buf)), 0u);  // at EOF
  EXPECT_EQ(ValueOrDie(f.ReadAtMost(40, buf)), 60u);  // partial tail
}

TEST(File, DirectIoOpenFallsBackOrWorks) {
  // O_DIRECT may be unsupported on the test filesystem; Open must either
  // succeed with direct I/O or fall back to buffered — never fail outright.
  TempDir dir;
  const std::string path = dir.Sub("d.bin");
  { (void)ValueOrDie(File::Open(path, OpenMode::kWrite)); }
  File f = ValueOrDie(File::Open(path, OpenMode::kRead, /*direct=*/true));
  EXPECT_TRUE(f.is_open());
}

}  // namespace
}  // namespace graphsd::io
