#include "io/device.hpp"

#include <gtest/gtest.h>

#include "testing_util.hpp"

namespace graphsd::io {
namespace {

using testing::TempDir;
using testing::ValueOrDie;

std::vector<std::uint8_t> Pattern(std::size_t n) {
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<std::uint8_t>(i);
  return data;
}

TEST(Device, RoundTripPreservesData) {
  TempDir dir;
  auto device = MakePosixDevice();
  const auto data = Pattern(1000);
  {
    DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, data));
  }
  DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kRead));
  std::vector<std::uint8_t> out(1000);
  ASSERT_OK(f.ReadAt(0, out));
  EXPECT_EQ(out, data);
}

TEST(Device, FirstReadIsRandomFollowUpIsSequential) {
  TempDir dir;
  auto device = MakePosixDevice();
  {
    DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, Pattern(4096)));
  }
  device->ResetAccounting();

  DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kRead));
  std::vector<std::uint8_t> buf(1024);
  ASSERT_OK(f.ReadAt(0, buf));     // seek to 0: random
  ASSERT_OK(f.ReadAt(1024, buf));  // continues: sequential
  ASSERT_OK(f.ReadAt(2048, buf));  // continues: sequential
  ASSERT_OK(f.ReadAt(0, buf));     // jumps back: random

  const auto s = device->stats().Snapshot();
  EXPECT_EQ(s.rand_read_ops, 2u);
  EXPECT_EQ(s.seq_read_ops, 2u);
  EXPECT_EQ(s.TotalReadBytes(), 4096u);
}

TEST(Device, WritePatternClassification) {
  TempDir dir;
  auto device = MakePosixDevice();
  DeviceFile f = ValueOrDie(device->Open(dir.Sub("w"), OpenMode::kWrite));
  const auto data = Pattern(512);
  ASSERT_OK(f.WriteAt(0, data));    // random (first)
  ASSERT_OK(f.WriteAt(512, data));  // sequential
  ASSERT_OK(f.WriteAt(0, data));    // random (rewind)
  const auto s = device->stats().Snapshot();
  EXPECT_EQ(s.rand_write_ops, 2u);
  EXPECT_EQ(s.seq_write_ops, 1u);
}

TEST(Device, SimulatedDeviceChargesVirtualTime) {
  TempDir dir;
  IoCostModel model;
  model.seq_read_bw = 1024.0 * 1024;  // 1 MiB/s: easy math
  model.seq_write_bw = 1024.0 * 1024;
  model.seek_seconds = 0.5;
  auto device = MakeSimulatedDevice(model);

  {
    DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, Pattern(1024 * 1024)));  // 1 random write
  }
  // 1 MiB at 1 MiB/s + one seek.
  EXPECT_NEAR(device->clock().Seconds(), 1.0 + 0.5, 1e-6);

  device->ResetAccounting();
  DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kRead));
  std::vector<std::uint8_t> buf(512 * 1024);
  ASSERT_OK(f.ReadAt(0, buf));              // seek + 0.5 s transfer
  ASSERT_OK(f.ReadAt(512 * 1024, buf));     // sequential: 0.5 s
  EXPECT_NEAR(device->clock().Seconds(), 0.5 + 0.5 + 0.5, 1e-6);
}

TEST(Device, PosixDeviceChargesNoVirtualTime) {
  TempDir dir;
  auto device = MakePosixDevice();
  DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kWrite));
  ASSERT_OK(f.WriteAt(0, Pattern(1 << 20)));
  EXPECT_EQ(device->clock().Seconds(), 0.0);
  EXPECT_GT(device->stats().Snapshot().TotalBytes(), 0u);  // still counted
}

TEST(Device, ResetAccountingClearsBoth) {
  TempDir dir;
  auto device = MakeSimulatedDevice();
  DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kWrite));
  ASSERT_OK(f.WriteAt(0, Pattern(4096)));
  device->ResetAccounting();
  EXPECT_EQ(device->stats().Snapshot().TotalBytes(), 0u);
  EXPECT_EQ(device->clock().Seconds(), 0.0);
}

TEST(Device, IndependentFilesTrackIndependentCursors) {
  TempDir dir;
  auto device = MakePosixDevice();
  {
    DeviceFile a = ValueOrDie(device->Open(dir.Sub("a"), OpenMode::kWrite));
    DeviceFile b = ValueOrDie(device->Open(dir.Sub("b"), OpenMode::kWrite));
    ASSERT_OK(a.WriteAt(0, Pattern(1024)));
    ASSERT_OK(b.WriteAt(0, Pattern(1024)));
  }
  device->ResetAccounting();
  DeviceFile a = ValueOrDie(device->Open(dir.Sub("a"), OpenMode::kRead));
  DeviceFile b = ValueOrDie(device->Open(dir.Sub("b"), OpenMode::kRead));
  std::vector<std::uint8_t> buf(512);
  ASSERT_OK(a.ReadAt(0, buf));
  ASSERT_OK(b.ReadAt(0, buf));
  ASSERT_OK(a.ReadAt(512, buf));  // sequential on a despite interleaving
  ASSERT_OK(b.ReadAt(512, buf));  // sequential on b
  const auto s = device->stats().Snapshot();
  EXPECT_EQ(s.rand_read_ops, 2u);
  EXPECT_EQ(s.seq_read_ops, 2u);
}

TEST(Device, MakeDeviceForKindRecognizesEveryCliSpelling) {
  for (const char* kind : {"scaled-hdd", "hdd", "ssd", "posix"}) {
    auto device = MakeDeviceForKind(kind);
    ASSERT_OK(device.status());
    ASSERT_NE(*device, nullptr);
  }
  // The posix kind measures real time only; the simulated kinds charge the
  // virtual clock.
  EXPECT_FALSE(
      ValueOrDie(MakeDeviceForKind("posix"))->options().charge_virtual_time);
  EXPECT_TRUE(
      ValueOrDie(MakeDeviceForKind("hdd"))->options().charge_virtual_time);
}

TEST(Device, MakeDeviceForKindRejectsUnknownKind) {
  // Regression: the CLI and the service each had their own parser and both
  // silently defaulted unknown kinds to scaled-hdd, so a typo like
  // "--device sdd" benched the wrong profile without a word.
  auto device = MakeDeviceForKind("sdd");
  EXPECT_EQ(device.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeDeviceForKind("").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace graphsd::io
