#include "io/device.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "testing_util.hpp"

namespace graphsd::io {
namespace {

using testing::TempDir;
using testing::ValueOrDie;

std::vector<std::uint8_t> Pattern(std::size_t n) {
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<std::uint8_t>(i);
  return data;
}

TEST(Device, RoundTripPreservesData) {
  TempDir dir;
  auto device = MakePosixDevice();
  const auto data = Pattern(1000);
  {
    DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, data));
  }
  DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kRead));
  std::vector<std::uint8_t> out(1000);
  ASSERT_OK(f.ReadAt(0, out));
  EXPECT_EQ(out, data);
}

TEST(Device, FirstReadIsRandomFollowUpIsSequential) {
  TempDir dir;
  auto device = MakePosixDevice();
  {
    DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, Pattern(4096)));
  }
  device->ResetAccounting();

  DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kRead));
  std::vector<std::uint8_t> buf(1024);
  ASSERT_OK(f.ReadAt(0, buf));     // seek to 0: random
  ASSERT_OK(f.ReadAt(1024, buf));  // continues: sequential
  ASSERT_OK(f.ReadAt(2048, buf));  // continues: sequential
  ASSERT_OK(f.ReadAt(0, buf));     // jumps back: random

  const auto s = device->stats().Snapshot();
  EXPECT_EQ(s.rand_read_ops, 2u);
  EXPECT_EQ(s.seq_read_ops, 2u);
  EXPECT_EQ(s.TotalReadBytes(), 4096u);
}

TEST(Device, WritePatternClassification) {
  TempDir dir;
  auto device = MakePosixDevice();
  DeviceFile f = ValueOrDie(device->Open(dir.Sub("w"), OpenMode::kWrite));
  const auto data = Pattern(512);
  ASSERT_OK(f.WriteAt(0, data));    // random (first)
  ASSERT_OK(f.WriteAt(512, data));  // sequential
  ASSERT_OK(f.WriteAt(0, data));    // random (rewind)
  const auto s = device->stats().Snapshot();
  EXPECT_EQ(s.rand_write_ops, 2u);
  EXPECT_EQ(s.seq_write_ops, 1u);
}

TEST(Device, SimulatedDeviceChargesVirtualTime) {
  TempDir dir;
  IoCostModel model;
  model.seq_read_bw = 1024.0 * 1024;  // 1 MiB/s: easy math
  model.seq_write_bw = 1024.0 * 1024;
  model.seek_seconds = 0.5;
  auto device = MakeSimulatedDevice(model);

  {
    DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, Pattern(1024 * 1024)));  // 1 random write
  }
  // 1 MiB at 1 MiB/s + one seek.
  EXPECT_NEAR(device->clock().Seconds(), 1.0 + 0.5, 1e-6);

  device->ResetAccounting();
  DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kRead));
  std::vector<std::uint8_t> buf(512 * 1024);
  ASSERT_OK(f.ReadAt(0, buf));              // seek + 0.5 s transfer
  ASSERT_OK(f.ReadAt(512 * 1024, buf));     // sequential: 0.5 s
  EXPECT_NEAR(device->clock().Seconds(), 0.5 + 0.5 + 0.5, 1e-6);
}

TEST(Device, PosixDeviceChargesNoVirtualTime) {
  TempDir dir;
  auto device = MakePosixDevice();
  DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kWrite));
  ASSERT_OK(f.WriteAt(0, Pattern(1 << 20)));
  EXPECT_EQ(device->clock().Seconds(), 0.0);
  EXPECT_GT(device->stats().Snapshot().TotalBytes(), 0u);  // still counted
}

TEST(Device, ResetAccountingClearsBoth) {
  TempDir dir;
  auto device = MakeSimulatedDevice();
  DeviceFile f = ValueOrDie(device->Open(dir.Sub("x"), OpenMode::kWrite));
  ASSERT_OK(f.WriteAt(0, Pattern(4096)));
  device->ResetAccounting();
  EXPECT_EQ(device->stats().Snapshot().TotalBytes(), 0u);
  EXPECT_EQ(device->clock().Seconds(), 0.0);
}

TEST(Device, IndependentFilesTrackIndependentCursors) {
  TempDir dir;
  auto device = MakePosixDevice();
  {
    DeviceFile a = ValueOrDie(device->Open(dir.Sub("a"), OpenMode::kWrite));
    DeviceFile b = ValueOrDie(device->Open(dir.Sub("b"), OpenMode::kWrite));
    ASSERT_OK(a.WriteAt(0, Pattern(1024)));
    ASSERT_OK(b.WriteAt(0, Pattern(1024)));
  }
  device->ResetAccounting();
  DeviceFile a = ValueOrDie(device->Open(dir.Sub("a"), OpenMode::kRead));
  DeviceFile b = ValueOrDie(device->Open(dir.Sub("b"), OpenMode::kRead));
  std::vector<std::uint8_t> buf(512);
  ASSERT_OK(a.ReadAt(0, buf));
  ASSERT_OK(b.ReadAt(0, buf));
  ASSERT_OK(a.ReadAt(512, buf));  // sequential on a despite interleaving
  ASSERT_OK(b.ReadAt(512, buf));  // sequential on b
  const auto s = device->stats().Snapshot();
  EXPECT_EQ(s.rand_read_ops, 2u);
  EXPECT_EQ(s.seq_read_ops, 2u);
}

TEST(Device, MakeDeviceForKindRecognizesEveryCliSpelling) {
  for (const char* kind : {"scaled-hdd", "sim:scaled-hdd", "sim:hdd",
                           "sim:ssd", "real:ssd", "posix"}) {
    auto device = MakeDeviceForKind(kind);
    ASSERT_OK(device.status());
    ASSERT_NE(*device, nullptr);
  }
  // The posix kind measures real time only; the simulated kinds charge the
  // virtual clock.
  EXPECT_FALSE(
      ValueOrDie(MakeDeviceForKind("posix"))->options().charge_virtual_time);
  EXPECT_TRUE(
      ValueOrDie(MakeDeviceForKind("sim:hdd"))->options().charge_virtual_time);
}

TEST(Device, MakeDeviceForKindRejectsUnknownKind) {
  // Regression: the CLI and the service each had their own parser and both
  // silently defaulted unknown kinds to scaled-hdd, so a typo like
  // "--device sdd" benched the wrong profile without a word.
  auto device = MakeDeviceForKind("sdd");
  EXPECT_EQ(device.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeDeviceForKind("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Device, MakeDeviceForKindRejectsAmbiguousBareSpellings) {
  // Regression: "ssd" used to silently return the *simulated* SSD profile.
  // Once a real backend exists the bare word is ambiguous, and a benchmark
  // must never run modeled I/O believing it measured hardware.
  for (const char* kind : {"hdd", "ssd"}) {
    auto device = MakeDeviceForKind(kind);
    EXPECT_EQ(device.status().code(), StatusCode::kInvalidArgument) << kind;
    EXPECT_NE(device.status().message().find("sim:"), std::string::npos)
        << kind;
  }
}

TEST(Device, RealSsdDeviceMeasuresRealTimeWithSsdSchedulerModel) {
  auto device = ValueOrDie(MakeDeviceForKind("real:ssd"));
  const DeviceOptions& opts = device->options();
  EXPECT_FALSE(opts.charge_virtual_time);  // wall-clock measurements only
  EXPECT_TRUE(opts.use_direct_io);
  // The scheduler still prices C_r/C_s/C_m with SSD economics.
  EXPECT_EQ(opts.cost_model.seek_seconds, IoCostModel::Ssd().seek_seconds);
  EXPECT_EQ(opts.read_batch_gap_bytes, IoCostModel::Ssd().random_request_bytes);
}

TEST(Device, ReadVAtScattersOneAccountedRequest) {
  TempDir dir;
  auto device = MakeSimulatedDevice();
  {
    DeviceFile f = ValueOrDie(device->Open(dir.Sub("v"), OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, Pattern(8192)));
  }
  device->ResetAccounting();
  DeviceFile f = ValueOrDie(device->Open(dir.Sub("v"), OpenMode::kRead));
  const std::vector<std::uint8_t> expected = Pattern(8192);
  std::vector<std::uint8_t> a(100), b(1), c(3000);
  const std::span<std::uint8_t> bufs[] = {a, b, c};
  ASSERT_OK(f.ReadVAt(37, bufs));
  EXPECT_TRUE(std::equal(a.begin(), a.end(), expected.begin() + 37));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), expected.begin() + 137));
  EXPECT_TRUE(std::equal(c.begin(), c.end(), expected.begin() + 138));
  const auto s = device->stats().Snapshot();
  EXPECT_EQ(s.rand_read_ops, 1u);  // one request, not three
  EXPECT_EQ(s.rand_read_bytes, 3101u);
  EXPECT_EQ(s.vectored_reads, 1u);
  // A follow-up starting where the scatter ended classifies sequential.
  ASSERT_OK(f.ReadAt(37 + 3101, a));
  EXPECT_EQ(device->stats().Snapshot().seq_read_ops, 1u);
}

TEST(Device, DirectIoReadsBounceWhenUnaligned) {
  TempDir dir;
  // 2.5 aligned blocks, so the tail read also exercises the EOF-short
  // covering range.
  const std::vector<std::uint8_t> expected = Pattern(10240);
  auto writer = MakePosixDevice();
  {
    DeviceFile f = ValueOrDie(writer->Open(dir.Sub("d"), OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, expected));
  }
  auto device = ValueOrDie(MakeDeviceForKind("real:ssd"));
  DeviceFile f = ValueOrDie(device->Open(dir.Sub("d"), OpenMode::kRead));
  std::vector<std::uint8_t> buf(5000);
  ASSERT_OK(f.ReadAt(4321, buf));  // unaligned offset and size
  EXPECT_TRUE(std::equal(buf.begin(), buf.end(), expected.begin() + 4321));
  std::vector<std::uint8_t> tail(100);
  ASSERT_OK(f.ReadAt(10240 - 100, tail));  // window ends exactly at EOF
  EXPECT_TRUE(
      std::equal(tail.begin(), tail.end(), expected.begin() + 10240 - 100));
  // Whether the filesystem honored O_DIRECT or fell back to buffered I/O,
  // logical accounting is identical; the bounce counter only moves on a
  // real direct descriptor.
  const auto s = device->stats().Snapshot();
  EXPECT_EQ(s.TotalReadBytes(), 5100u);
  std::vector<std::uint8_t> a(64), b(256);
  const std::span<std::uint8_t> bufs[] = {a, b};
  ASSERT_OK(f.ReadVAt(1, bufs));
  EXPECT_TRUE(std::equal(a.begin(), a.end(), expected.begin() + 1));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), expected.begin() + 65));
}

}  // namespace
}  // namespace graphsd::io
