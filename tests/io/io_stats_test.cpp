#include "io/io_stats.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace graphsd::io {
namespace {

TEST(IoStats, StartsZeroed) {
  IoStats stats;
  const auto s = stats.Snapshot();
  EXPECT_EQ(s.TotalBytes(), 0u);
  EXPECT_EQ(s.TotalOps(), 0u);
}

TEST(IoStats, RecordsByDirectionAndPattern) {
  IoStats stats;
  stats.RecordRead(AccessPattern::kSequential, 100);
  stats.RecordRead(AccessPattern::kRandom, 10);
  stats.RecordWrite(AccessPattern::kSequential, 200);
  stats.RecordWrite(AccessPattern::kRandom, 20);
  const auto s = stats.Snapshot();
  EXPECT_EQ(s.seq_read_bytes, 100u);
  EXPECT_EQ(s.rand_read_bytes, 10u);
  EXPECT_EQ(s.seq_write_bytes, 200u);
  EXPECT_EQ(s.rand_write_bytes, 20u);
  EXPECT_EQ(s.TotalReadBytes(), 110u);
  EXPECT_EQ(s.TotalWriteBytes(), 220u);
  EXPECT_EQ(s.TotalBytes(), 330u);
  EXPECT_EQ(s.seq_read_ops, 1u);
  EXPECT_EQ(s.rand_read_ops, 1u);
  EXPECT_EQ(s.TotalOps(), 4u);
}

TEST(IoStats, SnapshotDifference) {
  IoStats stats;
  stats.RecordRead(AccessPattern::kSequential, 100);
  const auto before = stats.Snapshot();
  stats.RecordRead(AccessPattern::kSequential, 50);
  stats.RecordWrite(AccessPattern::kRandom, 7);
  const auto delta = stats.Snapshot() - before;
  EXPECT_EQ(delta.seq_read_bytes, 50u);
  EXPECT_EQ(delta.rand_write_bytes, 7u);
  EXPECT_EQ(delta.seq_read_ops, 1u);
}

TEST(IoStats, SnapshotAccumulate) {
  IoStatsSnapshot a;
  a.seq_read_bytes = 5;
  a.rand_write_ops = 1;
  IoStatsSnapshot b;
  b.seq_read_bytes = 7;
  b.rand_write_ops = 2;
  a += b;
  EXPECT_EQ(a.seq_read_bytes, 12u);
  EXPECT_EQ(a.rand_write_ops, 3u);
}

TEST(IoStats, ResetZeroes) {
  IoStats stats;
  stats.RecordRead(AccessPattern::kRandom, 10);
  stats.Reset();
  EXPECT_EQ(stats.Snapshot().TotalBytes(), 0u);
}

TEST(IoStats, ConcurrentRecordingIsExact) {
  IoStats stats;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        stats.RecordRead(AccessPattern::kSequential, 3);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto s = stats.Snapshot();
  EXPECT_EQ(s.seq_read_bytes, 12000u);
  EXPECT_EQ(s.seq_read_ops, 4000u);
}

TEST(IoStats, ConcurrentMixedRecordingLosesNoBytesOrOps) {
  // The prefetch loader thread records reads while the consumer thread
  // records writes and retries; no update may be lost and every op must
  // land in the counter its pattern selects.
  IoStats stats;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        stats.RecordRead(AccessPattern::kSequential, 5);
        stats.RecordRead(AccessPattern::kRandom, 3);
        stats.RecordRetry();
      }
    });
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        stats.RecordWrite(AccessPattern::kSequential, 7);
        stats.RecordWrite(AccessPattern::kRandom, 2);
        stats.RecordChecksumFailure();
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto s = stats.Snapshot();
  EXPECT_EQ(s.seq_read_bytes, 2u * kOpsPerThread * 5);
  EXPECT_EQ(s.rand_read_bytes, 2u * kOpsPerThread * 3);
  EXPECT_EQ(s.seq_write_bytes, 2u * kOpsPerThread * 7);
  EXPECT_EQ(s.rand_write_bytes, 2u * kOpsPerThread * 2);
  EXPECT_EQ(s.seq_read_ops, 2u * kOpsPerThread);
  EXPECT_EQ(s.rand_read_ops, 2u * kOpsPerThread);
  EXPECT_EQ(s.seq_write_ops, 2u * kOpsPerThread);
  EXPECT_EQ(s.rand_write_ops, 2u * kOpsPerThread);
  EXPECT_EQ(s.retries, 2u * kOpsPerThread);
  EXPECT_EQ(s.checksum_failures, 2u * kOpsPerThread);
}

TEST(IoStats, SnapshotWhileRecordingSeesConsistentMonotoneTotals) {
  // Snapshots taken mid-flight (the engine's per-round accounting does
  // this while the loader is reading ahead) must be monotone and bounded
  // by the final total.
  IoStats stats;
  constexpr int kOps = 5000;
  std::thread writer([&] {
    for (int i = 0; i < kOps; ++i) {
      stats.RecordRead(AccessPattern::kSequential, 4);
    }
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t now = stats.Snapshot().TotalReadBytes();
    EXPECT_GE(now, last);
    last = now;
  }
  writer.join();
  EXPECT_EQ(stats.Snapshot().TotalReadBytes(), 4u * kOps);
  EXPECT_LE(last, 4u * kOps);
}

TEST(IoStats, ToStringMentionsComponents) {
  IoStats stats;
  stats.RecordRead(AccessPattern::kSequential, 1024);
  const std::string s = stats.Snapshot().ToString();
  EXPECT_NE(s.find("read"), std::string::npos);
  EXPECT_NE(s.find("write"), std::string::npos);
}

}  // namespace
}  // namespace graphsd::io
