#include "io/read_queue.hpp"

#include <atomic>
#include <future>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "testing_util.hpp"
#include "util/thread_pool.hpp"

namespace graphsd::io {
namespace {

TEST(ReadQueue, DepthClampedToAtLeastOne) {
  ThreadPool pool(1);
  ReadQueue queue(pool, 0);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(ReadQueue, FifoSubmitWaitReturnsEachStatus) {
  ThreadPool pool(1);
  ReadQueue queue(pool, 2);
  std::vector<ReadQueue::Ticket> tickets;
  std::atomic<int> executed{0};
  for (int i = 0; i < 8; ++i) {
    tickets.push_back(queue.Submit([&executed] {
      ++executed;
      return Status::Ok();
    }));
  }
  for (const ReadQueue::Ticket t : tickets) EXPECT_OK(queue.Wait(t));
  EXPECT_EQ(executed.load(), 8);
  EXPECT_EQ(queue.submitted(), 8u);
  EXPECT_EQ(queue.skipped(), 0u);
}

TEST(ReadQueue, SingleWorkerExecutesInSubmissionOrder) {
  ThreadPool pool(1);
  ReadQueue queue(pool, 4);
  std::vector<int> order;
  std::mutex order_mutex;
  std::vector<ReadQueue::Ticket> tickets;
  for (int i = 0; i < 16; ++i) {
    tickets.push_back(queue.Submit([i, &order, &order_mutex] {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(i);
      return Status::Ok();
    }));
  }
  for (const ReadQueue::Ticket t : tickets) EXPECT_OK(queue.Wait(t));
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ReadQueue, InFlightWindowNeverExceedsDepth) {
  // Submit blocks while `depth` tasks are unresolved, so even with more
  // workers than depth at most `depth` tasks can ever run concurrently.
  ThreadPool pool(4);
  ReadQueue queue(pool, 2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::vector<ReadQueue::Ticket> tickets;
  for (int i = 0; i < 32; ++i) {
    tickets.push_back(queue.Submit([&running, &peak] {
      const int now = ++running;
      int seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      --running;
      return Status::Ok();
    }));
  }
  for (const ReadQueue::Ticket t : tickets) EXPECT_OK(queue.Wait(t));
  EXPECT_LE(peak.load(), 2);
}

TEST(ReadQueue, FailureSkipsQueuedTasksWithPoisoningStatus) {
  ThreadPool pool(1);
  ReadQueue queue(pool, 4);
  // Park the worker so the failing task and its successors queue up behind
  // the gate; none of the successors may touch the "device".
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> executed_after_failure{0};
  const ReadQueue::Ticket t0 = queue.Submit([opened] {
    opened.wait();
    return Status::Ok();
  });
  const ReadQueue::Ticket t1 =
      queue.Submit([] { return IoError("injected"); });
  const ReadQueue::Ticket t2 = queue.Submit([&executed_after_failure] {
    ++executed_after_failure;
    return Status::Ok();
  });
  const ReadQueue::Ticket t3 = queue.Submit([&executed_after_failure] {
    ++executed_after_failure;
    return Status::Ok();
  });
  gate.set_value();
  EXPECT_OK(queue.Wait(t0));
  const Status failed = queue.Wait(t1);
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_EQ(queue.Wait(t2).code(), StatusCode::kIoError);
  EXPECT_EQ(queue.Wait(t3).code(), StatusCode::kIoError);
  EXPECT_EQ(executed_after_failure.load(), 0);
  EXPECT_EQ(queue.skipped(), 2u);
}

TEST(ReadQueue, PoisonClearsOnceBatchFullyRedeemed) {
  // A failed round must not poison the next one (the engine redoes a failed
  // on-demand round under full streaming through the same queue).
  ThreadPool pool(1);
  ReadQueue queue(pool, 4);
  const ReadQueue::Ticket bad =
      queue.Submit([] { return IoError("injected"); });
  EXPECT_EQ(queue.Wait(bad).code(), StatusCode::kIoError);

  std::atomic<int> executed{0};
  const ReadQueue::Ticket next = queue.Submit([&executed] {
    ++executed;
    return Status::Ok();
  });
  EXPECT_OK(queue.Wait(next));
  EXPECT_EQ(executed.load(), 1);
  EXPECT_EQ(queue.skipped(), 0u);
}

TEST(ReadQueue, DrainResolvesUnredeemedTickets) {
  ThreadPool pool(2);
  ReadQueue queue(pool, 4);
  std::atomic<int> executed{0};
  for (int i = 0; i < 8; ++i) {
    (void)queue.Submit([&executed] {
      ++executed;
      return Status::Ok();
    });
  }
  queue.Drain();
  EXPECT_EQ(executed.load(), 8);
  // The batch is gone: a fresh submission gets a clean window.
  const ReadQueue::Ticket t = queue.Submit([] { return Status::Ok(); });
  EXPECT_OK(queue.Wait(t));
}

TEST(ReadQueue, DrainAfterFailureClearsPoison) {
  ThreadPool pool(1);
  ReadQueue queue(pool, 4);
  (void)queue.Submit([] { return IoError("injected"); });
  (void)queue.Submit([] { return Status::Ok(); });
  queue.Drain();
  std::atomic<int> executed{0};
  const ReadQueue::Ticket t = queue.Submit([&executed] {
    ++executed;
    return Status::Ok();
  });
  EXPECT_OK(queue.Wait(t));
  EXPECT_EQ(executed.load(), 1);
}

TEST(ReadQueue, DestructorDrainsOutstandingTasks) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  {
    ReadQueue queue(pool, 4);
    for (int i = 0; i < 8; ++i) {
      (void)queue.Submit([&executed] {
        ++executed;
        return Status::Ok();
      });
    }
  }
  EXPECT_EQ(executed.load(), 8);
}

}  // namespace
}  // namespace graphsd::io
