#include "io/cost_model.hpp"

#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace graphsd::io {
namespace {

TEST(IoCostModel, SequentialCostIsBytesOverBandwidth) {
  IoCostModel m = IoCostModel::Hdd();
  const std::uint64_t bytes = 160ull * 1024 * 1024;  // exactly 1 s worth
  EXPECT_NEAR(m.SeqReadSeconds(bytes), 1.0, 1e-9);
}

TEST(IoCostModel, RandomCostAddsSeekPerRequest) {
  IoCostModel m;
  m.seq_read_bw = 100.0 * 1024 * 1024;
  m.seek_seconds = 0.01;
  const double one = m.RandReadSeconds(1024, 1);
  const double ten = m.RandReadSeconds(1024, 10);
  EXPECT_NEAR(ten - one, 9 * 0.01, 1e-12);
}

TEST(IoCostModel, RandomSlowerThanSequentialForSameBytes) {
  IoCostModel m = IoCostModel::Hdd();
  const std::uint64_t bytes = 1 << 20;
  EXPECT_GT(m.RandReadSeconds(bytes, 16), m.SeqReadSeconds(bytes));
}

TEST(IoCostModel, PaperStyleRandomBandwidthBelowSequential) {
  IoCostModel hdd = IoCostModel::Hdd();
  EXPECT_LT(hdd.RandomReadBandwidth(), hdd.seq_read_bw);
  EXPECT_GT(hdd.RandomReadBandwidth(), 0.0);
}

TEST(IoCostModel, SsdHasMuchSmallerSeekPenalty) {
  IoCostModel hdd = IoCostModel::Hdd();
  IoCostModel ssd = IoCostModel::Ssd();
  // Relative random penalty (random/sequential for the same transfer) must
  // be far smaller on the SSD profile.
  const std::uint64_t bytes = 64 * 1024;
  const double hdd_ratio =
      hdd.RandReadSeconds(bytes, 1) / hdd.SeqReadSeconds(bytes);
  const double ssd_ratio =
      ssd.RandReadSeconds(bytes, 1) / ssd.SeqReadSeconds(bytes);
  EXPECT_GT(hdd_ratio, 10 * ssd_ratio);
}

TEST(IoCostModel, FreeModelCostsNothing) {
  IoCostModel free = IoCostModel::Free();
  EXPECT_EQ(free.SeqReadSeconds(1 << 30), 0.0);
  EXPECT_EQ(free.SeqWriteSeconds(1 << 30), 0.0);
  EXPECT_EQ(free.RandReadSeconds(1 << 30, 100), 0.0);
}

TEST(IoCostModel, CostIsMonotoneInBytes) {
  IoCostModel m = IoCostModel::Hdd();
  double prev = -1;
  for (std::uint64_t bytes = 1; bytes < (1ull << 30); bytes *= 4) {
    const double cost = m.SeqReadSeconds(bytes);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(IoCostModel, ToStringMentionsBandwidths) {
  const std::string s = IoCostModel::Hdd().ToString();
  EXPECT_NE(s.find("B_sr"), std::string::npos);
  EXPECT_NE(s.find("seek"), std::string::npos);
}

TEST(IoCostModel, ToStringNeverTruncatesExtremeFields) {
  // Regression: the old 256-byte snprintf buffer silently cut off renderings
  // with very large field values. Absurd-but-representable parameters must
  // come back complete, down to the closing random-bandwidth unit.
  IoCostModel m;
  m.seq_read_bw = 1e300;
  m.seq_write_bw = 1e300;
  m.seek_seconds = 1e18;
  m.random_request_bytes = std::numeric_limits<std::uint64_t>::max();
  const std::string s = m.ToString();
  EXPECT_GT(s.size(), 256u);  // would have been impossible pre-fix
  EXPECT_NE(s.find("B_sr"), std::string::npos);
  EXPECT_NE(s.find("B_sw"), std::string::npos);
  // The rendering ends with the final field's unit, so nothing was dropped.
  EXPECT_EQ(s.rfind(" MiB/s"), s.size() - 6);
  const std::string kib =
      std::to_string(std::numeric_limits<std::uint64_t>::max() / 1024);
  EXPECT_NE(s.find("B_rr(" + kib + " KiB)"), std::string::npos);
}

}  // namespace
}  // namespace graphsd::io
