// The deterministic fault injector and the device retry policy it exercises.
#include "io/fault_injector.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/device.hpp"
#include "testing_util.hpp"

namespace graphsd::io {
namespace {

using testing::TempDir;
using testing::ValueOrDie;

std::span<const std::uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(FaultInjector, NthRuleFiresExactlyOnce) {
  FaultInjector injector(1);
  FaultRule rule;
  rule.kind = FaultKind::kEio;
  rule.op = FaultOp::kRead;
  rule.nth = 3;
  injector.AddRule(rule);
  EXPECT_FALSE(injector.Evaluate(FaultOp::kRead, "/f").has_value());
  EXPECT_FALSE(injector.Evaluate(FaultOp::kRead, "/f").has_value());
  const auto fault = injector.Evaluate(FaultOp::kRead, "/f");
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(*fault, FaultKind::kEio);
  EXPECT_FALSE(injector.Evaluate(FaultOp::kRead, "/f").has_value());
  EXPECT_EQ(injector.ops_seen(), 4u);
  EXPECT_EQ(injector.faults_injected(), 1u);
}

TEST(FaultInjector, OpAndPathFiltersGateMatching) {
  FaultInjector injector(1);
  FaultRule rule;
  rule.kind = FaultKind::kEio;
  rule.op = FaultOp::kRead;
  rule.path_substring = ".index";
  rule.nth = 1;
  injector.AddRule(rule);
  // Writes and non-index paths do not advance the rule's match counter.
  EXPECT_FALSE(injector.Evaluate(FaultOp::kWrite, "/ds/sb_0_0.index"));
  EXPECT_FALSE(injector.Evaluate(FaultOp::kRead, "/ds/sb_0_0.edges"));
  EXPECT_TRUE(injector.Evaluate(FaultOp::kRead, "/ds/sb_0_0.index"));
}

TEST(FaultInjector, MaxFiresBoundsStorms) {
  FaultInjector injector(1);
  FaultRule rule;
  rule.kind = FaultKind::kEintr;
  rule.probability = 1.0;
  rule.max_fires = 2;
  injector.AddRule(rule);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.Evaluate(FaultOp::kRead, "/f")) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(injector.faults_injected(), 2u);
}

TEST(FaultInjector, SeededProbabilityIsReproducible) {
  FaultRule rule;
  rule.kind = FaultKind::kEio;
  rule.probability = 0.3;

  const auto sequence = [&rule](std::uint64_t seed) {
    FaultInjector injector(seed);
    injector.AddRule(rule);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(injector.Evaluate(FaultOp::kRead, "/f").has_value());
    }
    return fired;
  };
  const auto a = sequence(7);
  EXPECT_EQ(a, sequence(7));
  EXPECT_NE(a, sequence(8));

  // Reset(seed) replays the same schedule without rebuilding the rules.
  FaultInjector injector(7);
  injector.AddRule(rule);
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) {
    first.push_back(injector.Evaluate(FaultOp::kRead, "/f").has_value());
  }
  injector.Reset();
  std::vector<bool> second;
  for (int i = 0; i < 200; ++i) {
    second.push_back(injector.Evaluate(FaultOp::kRead, "/f").has_value());
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, a);
}

class DeviceRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = MakeSimulatedDevice(IoCostModel::Free());
    path_ = dir_.Sub("payload.bin");
    DeviceFile f = ValueOrDie(device_->Open(path_, OpenMode::kWrite));
    ASSERT_OK(f.WriteAt(0, Bytes("0123456789abcdef")));
  }

  TempDir dir_;
  std::unique_ptr<Device> device_;
  std::string path_;
};

TEST_F(DeviceRetryTest, TransientReadFaultIsAbsorbedByRetry) {
  FaultInjector injector(3);
  FaultRule rule;
  rule.kind = FaultKind::kEio;
  rule.op = FaultOp::kRead;
  rule.nth = 1;
  injector.AddRule(rule);
  // When the kEio rule fires (its request's attempt 1) the evaluation
  // returns early, so this rule only sees the remaining read ops: the kEio
  // retry is its 1st match and request 2's first attempt its 2nd.
  FaultRule short_read;
  short_read.kind = FaultKind::kShortRead;
  short_read.op = FaultOp::kRead;
  short_read.nth = 2;
  injector.AddRule(short_read);
  device_->set_fault_injector(&injector);

  DeviceFile f = ValueOrDie(device_->Open(path_, OpenMode::kRead));
  std::string out(4, '\0');
  // First request: attempt 1 hits kEio, attempt 2 succeeds.
  ASSERT_OK(f.ReadAt(0, {reinterpret_cast<std::uint8_t*>(out.data()), 4}));
  EXPECT_EQ(out, "0123");
  // Second request: attempt 3 hits kShortRead, attempt 4 succeeds.
  ASSERT_OK(f.ReadAt(4, {reinterpret_cast<std::uint8_t*>(out.data()), 4}));
  EXPECT_EQ(out, "4567");
  EXPECT_EQ(device_->stats().Snapshot().retries, 2u);
  EXPECT_EQ(injector.faults_injected(), 2u);
}

TEST_F(DeviceRetryTest, BackoffIsChargedToTheVirtualClock) {
  FaultInjector injector(3);
  FaultRule rule;
  rule.kind = FaultKind::kEio;
  rule.op = FaultOp::kRead;
  rule.nth = 1;
  injector.AddRule(rule);
  device_->set_fault_injector(&injector);

  DeviceFile f = ValueOrDie(device_->Open(path_, OpenMode::kRead));
  std::uint8_t buf[4];
  const double before = device_->clock().Seconds();
  ASSERT_OK(f.ReadAt(0, buf));
  // One retry at the default 1 ms backoff; the Free cost model charges
  // nothing for bytes, so the delta is exactly the backoff.
  EXPECT_GE(device_->clock().Seconds() - before,
            device_->options().retry_backoff_seconds);
}

TEST_F(DeviceRetryTest, EintrIsAbsorbedWithoutConsumingRetryBudget) {
  FaultInjector injector(3);
  FaultRule rule;
  rule.kind = FaultKind::kEintr;
  rule.op = FaultOp::kRead;
  rule.probability = 1.0;
  rule.max_fires = 3;  // a short storm on the very first request
  injector.AddRule(rule);
  device_->set_fault_injector(&injector);

  DeviceFile f = ValueOrDie(device_->Open(path_, OpenMode::kRead));
  std::uint8_t buf[4];
  const double before = device_->clock().Seconds();
  ASSERT_OK(f.ReadAt(0, buf));
  const auto s = device_->stats().Snapshot();
  // All three interruptions were retried in place: no retry-budget slot
  // consumed, no backoff charged, but each absorption is observable.
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.eintr_absorbed, 3u);
  EXPECT_EQ(device_->clock().Seconds(), before);
  EXPECT_EQ(injector.faults_injected(), 3u);
}

TEST_F(DeviceRetryTest, UnboundedEintrStormStillTerminates) {
  FaultInjector injector(3);
  FaultRule rule;
  rule.kind = FaultKind::kEintr;
  rule.op = FaultOp::kRead;
  rule.probability = 1.0;  // no max_fires: fires forever
  injector.AddRule(rule);
  device_->set_fault_injector(&injector);

  DeviceFile f = ValueOrDie(device_->Open(path_, OpenMode::kRead));
  std::uint8_t buf[4];
  // Past the spin cap the storm degrades to the normal transient-error
  // path, which is bounded by max_io_attempts — the read fails instead of
  // spinning forever.
  const Status status = f.ReadAt(0, buf);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("attempts"), std::string::npos);
}

TEST_F(DeviceRetryTest, PersistentFaultExhaustsAttempts) {
  FaultInjector injector(3);
  FaultRule rule;
  rule.kind = FaultKind::kEio;
  rule.op = FaultOp::kRead;
  rule.probability = 1.0;
  injector.AddRule(rule);
  device_->set_fault_injector(&injector);

  DeviceFile f = ValueOrDie(device_->Open(path_, OpenMode::kRead));
  std::uint8_t buf[4];
  const Status status = f.ReadAt(0, buf);
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("attempts"), std::string::npos);
  const int max_attempts = device_->options().max_io_attempts;
  EXPECT_EQ(device_->stats().Snapshot().retries,
            static_cast<std::uint64_t>(max_attempts - 1));
  EXPECT_EQ(injector.faults_injected(),
            static_cast<std::uint64_t>(max_attempts));
}

TEST_F(DeviceRetryTest, EnospcIsNeverRetried) {
  FaultInjector injector(3);
  FaultRule rule;
  rule.kind = FaultKind::kEnospc;
  rule.op = FaultOp::kWrite;
  rule.nth = 1;
  injector.AddRule(rule);
  device_->set_fault_injector(&injector);

  DeviceFile f = ValueOrDie(device_->Open(dir_.Sub("out.bin"),
                                          OpenMode::kWrite));
  const Status status = f.WriteAt(0, Bytes("data"));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(device_->stats().Snapshot().retries, 0u);
  EXPECT_EQ(injector.faults_injected(), 1u);
}

}  // namespace
}  // namespace graphsd::io
