#include "io/profiler.hpp"

#include <gtest/gtest.h>

#include "io/file.hpp"
#include "testing_util.hpp"

namespace graphsd::io {
namespace {

using testing::TempDir;
using testing::ValueOrDie;

TEST(DeviceProfiler, ProducesPositiveBandwidths) {
  TempDir dir;
  ProfilerOptions options;
  options.file_bytes = 4 * 1024 * 1024;  // keep the test fast
  options.rand_requests = 32;
  const ProfileResult r = ValueOrDie(ProfileDevice(dir.path(), options));
  EXPECT_GT(r.seq_read_bw, 0.0);
  EXPECT_GT(r.seq_write_bw, 0.0);
  EXPECT_GT(r.rand_read_bw, 0.0);
  EXPECT_GT(r.rand_write_bw, 0.0);
}

TEST(DeviceProfiler, CleansUpScratchFile) {
  TempDir dir;
  ProfilerOptions options;
  options.file_bytes = 1 * 1024 * 1024;
  options.rand_requests = 8;
  (void)ValueOrDie(ProfileDevice(dir.path(), options));
  EXPECT_FALSE(PathExists(dir.path() + "/graphsd_profile.tmp"));
}

TEST(DeviceProfiler, RejectsRequestLargerThanFile) {
  TempDir dir;
  ProfilerOptions options;
  options.file_bytes = 64 * 1024;
  options.rand_request_bytes = 1024 * 1024;
  const auto result = ProfileDevice(dir.path(), options);
  EXPECT_FALSE(result.ok());
}

TEST(ProfileResult, ToCostModelDerivesSeekFromBandwidthGap) {
  ProfileResult r;
  r.seq_read_bw = 100.0 * 1024 * 1024;
  r.seq_write_bw = 100.0 * 1024 * 1024;
  const std::uint64_t request = 64 * 1024;
  // Suppose random reads achieve 10 MiB/s at 64 KiB requests.
  r.rand_read_bw = 10.0 * 1024 * 1024;
  const IoCostModel m = r.ToCostModel(request);
  // seek = s/B_rr - s/B_sr
  const double expected =
      request / r.rand_read_bw - request / r.seq_read_bw;
  EXPECT_NEAR(m.seek_seconds, expected, 1e-9);
  // Round-tripping: the model's derived B_rr matches the measurement.
  EXPECT_NEAR(m.RandomReadBandwidth(), r.rand_read_bw, 1.0);
}

TEST(ProfileResult, ToCostModelClampsNegativeSeek) {
  ProfileResult r;
  r.seq_read_bw = 100.0 * 1024 * 1024;
  r.rand_read_bw = 200.0 * 1024 * 1024;  // cache effects: faster than seq
  const IoCostModel m = r.ToCostModel(64 * 1024);
  EXPECT_GE(m.seek_seconds, 0.0);
}

}  // namespace
}  // namespace graphsd::io
