// The ScaledHdd calibration invariants (DESIGN.md §5.1).
#include <gtest/gtest.h>

#include "io/cost_model.hpp"

namespace graphsd::io {
namespace {

TEST(ScaledHdd, PreservesSeeksPerScanRatio) {
  const IoCostModel hdd = IoCostModel::Hdd();
  const IoCostModel scaled = IoCostModel::ScaledHdd(1000.0, 8.0);
  // Ratio = (scan time of a reference payload) / seek. For the scaled model
  // the payload shrinks by the size factor; the ratio must match.
  const std::uint64_t paper_bytes = 18ull << 30;
  const std::uint64_t proxy_bytes = paper_bytes / 1000;
  const double paper_ratio =
      hdd.SeqReadSeconds(paper_bytes) / hdd.seek_seconds;
  const double proxy_ratio =
      scaled.SeqReadSeconds(proxy_bytes) / scaled.seek_seconds;
  EXPECT_NEAR(proxy_ratio / paper_ratio, 1.0, 1e-6);
}

TEST(ScaledHdd, IoWeightInflatesModeledTimeUniformly) {
  const IoCostModel base = IoCostModel::ScaledHdd(1000.0, 1.0);
  const IoCostModel weighted = IoCostModel::ScaledHdd(1000.0, 8.0);
  const std::uint64_t bytes = 10 << 20;
  EXPECT_NEAR(weighted.SeqReadSeconds(bytes) / base.SeqReadSeconds(bytes),
              8.0, 1e-9);
  EXPECT_NEAR(weighted.SeqWriteSeconds(bytes) / base.SeqWriteSeconds(bytes),
              8.0, 1e-9);
  // Seeks inflate by the same factor, so relative costs are unchanged.
  EXPECT_NEAR(weighted.seek_seconds / base.seek_seconds, 8.0, 1e-9);
}

TEST(ScaledHdd, CrossoverInvariantUnderIoWeight) {
  // The scheduler decision compares sums of seq/rand terms: multiplying
  // every term by the same factor must not change which side wins.
  const IoCostModel a = IoCostModel::ScaledHdd(1000.0, 1.0);
  const IoCostModel b = IoCostModel::ScaledHdd(1000.0, 8.0);
  const std::uint64_t scan = 8 << 20;
  const std::uint64_t selective = 1 << 20;
  for (const std::uint64_t seeks : {10ull, 1000ull, 100000ull}) {
    const bool a_prefers_selective =
        a.RandReadSeconds(selective, seeks) < a.SeqReadSeconds(scan);
    const bool b_prefers_selective =
        b.RandReadSeconds(selective, seeks) < b.SeqReadSeconds(scan);
    EXPECT_EQ(a_prefers_selective, b_prefers_selective) << seeks;
  }
}

TEST(ScaledHdd, DefaultsMatchDocumentedProfile) {
  const IoCostModel m = IoCostModel::ScaledHdd();
  EXPECT_NEAR(m.seq_read_bw, 160.0 * 1024 * 1024 / 8, 1.0);
  EXPECT_NEAR(m.seek_seconds, 8.0e-3 * 8 / 1000, 1e-12);
  EXPECT_EQ(m.random_request_bytes, 4096u);
}

}  // namespace
}  // namespace graphsd::io
