// ReadBinaryEdgeHeader: the streaming readers' entry point.
#include <gtest/gtest.h>

#include "graph/edge_io.hpp"
#include "graph/generators.hpp"
#include "testing_util.hpp"

namespace graphsd {
namespace {

using testing::TempDir;
using testing::ValueOrDie;

TEST(BinaryEdgeHeader, DescribesUnweightedFile) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  const EdgeList g = GenerateRing(50);
  ASSERT_OK(WriteBinaryEdgeList(g, *device, dir.Sub("g.bin")));
  const BinaryEdgeHeader header =
      ValueOrDie(ReadBinaryEdgeHeader(*device, dir.Sub("g.bin")));
  EXPECT_EQ(header.num_vertices, 50u);
  EXPECT_EQ(header.num_edges, 50u);
  EXPECT_FALSE(header.weighted);
  EXPECT_EQ(header.weights_offset,
            header.edges_offset + 50 * sizeof(Edge));
}

TEST(BinaryEdgeHeader, OffsetsLocateThePayload) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  const EdgeList g = GeneratePath(10, 3.0);
  ASSERT_OK(WriteBinaryEdgeList(g, *device, dir.Sub("g.bin")));
  const BinaryEdgeHeader header =
      ValueOrDie(ReadBinaryEdgeHeader(*device, dir.Sub("g.bin")));
  ASSERT_TRUE(header.weighted);

  io::DeviceFile file =
      ValueOrDie(device->Open(dir.Sub("g.bin"), io::OpenMode::kRead));
  Edge first{};
  ASSERT_OK(file.ReadAt(header.edges_offset,
                        {reinterpret_cast<std::uint8_t*>(&first),
                         sizeof(first)}));
  EXPECT_EQ(first, (Edge{0, 1}));
  Weight w{};
  ASSERT_OK(file.ReadAt(header.weights_offset,
                        {reinterpret_cast<std::uint8_t*>(&w), sizeof(w)}));
  EXPECT_FLOAT_EQ(w, 3.0f);
}

TEST(BinaryEdgeHeader, RejectsGarbage) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  ASSERT_OK(io::WriteStringToFile(dir.Sub("bad.bin"), std::string(100, 'q')));
  EXPECT_FALSE(ReadBinaryEdgeHeader(*device, dir.Sub("bad.bin")).ok());
}

TEST(BinaryEdgeHeader, RejectsMissingFile) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  EXPECT_FALSE(ReadBinaryEdgeHeader(*device, dir.Sub("nope.bin")).ok());
}

}  // namespace
}  // namespace graphsd
