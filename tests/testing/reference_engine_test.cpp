// The oracle must itself be correct before it can judge the engine: check
// RunReferenceBsp against the independent analytic references in
// graph/reference_algorithms.hpp (Dijkstra, label propagation, closed-form
// PageRank) on structured graphs.
#include "testing/reference_engine.hpp"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/reference_algorithms.hpp"
#include "testing/graph_cases.hpp"
#include "testing/program_factory.hpp"
#include "testing_util.hpp"

namespace graphsd::testing {
namespace {

ReferenceResult RunOracle(const std::string& algo, const EdgeList& graph,
                          VertexId root = 0) {
  auto program = ValueOrDie(MakeProgram(algo, root));
  return ValueOrDie(RunReferenceBsp(*program, graph));
}

TEST(ReferenceEngine, BfsMatchesHopCountsOnPath) {
  const EdgeList graph = GeneratePath(16);
  const ReferenceResult result = RunOracle("bfs", graph, 0);
  ASSERT_EQ(result.values.size(), 16u);
  for (VertexId v = 0; v < 16; ++v) {
    EXPECT_EQ(result.values[v], static_cast<double>(v)) << "vertex " << v;
  }
  // One wave per non-empty frontier, including the final {15} wave that
  // discovers the frontier has drained — matching the engine's count.
  EXPECT_EQ(result.iterations, 16u);
}

TEST(ReferenceEngine, SsspMatchesDijkstra) {
  const EdgeList graph = GenerateGrid2D(6, 7, /*seed=*/3, /*max_weight=*/9.0);
  const std::vector<double> expect = ReferenceSssp(graph, 0);
  const ReferenceResult result = RunOracle("sssp", graph, 0);
  ASSERT_EQ(result.values.size(), expect.size());
  for (std::size_t v = 0; v < expect.size(); ++v) {
    EXPECT_DOUBLE_EQ(result.values[v], expect[v]) << "vertex " << v;
  }
}

TEST(ReferenceEngine, WidestPathMatchesBottleneckDijkstra) {
  const EdgeList graph = GenerateGrid2D(5, 5, /*seed=*/11, /*max_weight=*/7.0);
  const std::vector<double> expect = ReferenceWidestPath(graph, 2);
  const ReferenceResult result = RunOracle("widest_path", graph, 2);
  ASSERT_EQ(result.values.size(), expect.size());
  for (std::size_t v = 0; v < expect.size(); ++v) {
    EXPECT_DOUBLE_EQ(result.values[v], expect[v]) << "vertex " << v;
  }
}

TEST(ReferenceEngine, ConnectedComponentsMatchesLabelPropagation) {
  EdgeList graph = Symmetrize(GeneratePath(9));
  // A second component.
  graph.EnsureVertices(14);
  graph.AddEdge(10, 12);
  graph.AddEdge(12, 10);
  const std::vector<VertexId> expect = ReferenceConnectedComponents(graph);
  const ReferenceResult result = RunOracle("cc", graph);
  ASSERT_EQ(result.values.size(), expect.size());
  for (std::size_t v = 0; v < expect.size(); ++v) {
    EXPECT_EQ(result.values[v], static_cast<double>(expect[v]))
        << "vertex " << v;
  }
}

TEST(ReferenceEngine, PageRankMatchesSynchronousReference) {
  const GraphCase gc = GenerateGraphCase(77);
  const std::vector<double> expect = ReferencePageRank(gc.list, 10);
  const ReferenceResult result = RunOracle("pagerank", gc.list);
  EXPECT_EQ(result.iterations, 10u);
  ASSERT_EQ(result.values.size(), expect.size());
  for (std::size_t v = 0; v < expect.size(); ++v) {
    EXPECT_NEAR(result.values[v], expect[v], 1e-12) << "vertex " << v;
  }
}

TEST(ReferenceEngine, PageRankDeltaConvergesToPageRankFixpoint) {
  const EdgeList graph = GenerateComplete(8);
  const std::vector<double> expect = ReferencePageRank(graph, 60);
  const ReferenceResult result = RunOracle("pagerank_delta", graph);
  ASSERT_EQ(result.values.size(), expect.size());
  for (std::size_t v = 0; v < expect.size(); ++v) {
    EXPECT_NEAR(result.values[v], expect[v], 1e-6) << "vertex " << v;
  }
}

TEST(ReferenceEngine, FrontiersRecordBspWaves) {
  const EdgeList graph = GeneratePath(5);
  const ReferenceResult result = RunOracle("bfs", graph, 0);
  // Frontier entering iteration k is exactly {k} on a path rooted at 0,
  // and the final recorded frontier is empty.
  ASSERT_EQ(result.frontiers.size(), result.iterations + 1);
  EXPECT_EQ(result.frontiers[0], std::vector<VertexId>{0});
  EXPECT_EQ(result.frontiers[2], std::vector<VertexId>{2});
  EXPECT_TRUE(result.frontiers.back().empty());
}

TEST(ReferenceEngine, RejectsInvalidGraph) {
  EdgeList graph(4);
  graph.AddEdge(0, 1, -2.0f);  // negative weight
  auto program = ValueOrDie(MakeProgram("sssp", 0));
  auto result = RunReferenceBsp(*program, graph);
  EXPECT_FALSE(result.ok());
}

TEST(GraphCases, DeterministicForSeed) {
  const GraphCase a = GenerateGraphCase(42);
  const GraphCase b = GenerateGraphCase(42);
  EXPECT_EQ(a.family, b.family);
  EXPECT_EQ(a.root, b.root);
  ASSERT_EQ(a.list.num_edges(), b.list.num_edges());
  ASSERT_EQ(a.list.num_vertices(), b.list.num_vertices());
  for (std::size_t k = 0; k < a.list.num_edges(); ++k) {
    EXPECT_EQ(a.list.edges()[k].src, b.list.edges()[k].src);
    EXPECT_EQ(a.list.edges()[k].dst, b.list.edges()[k].dst);
  }
}

TEST(GraphCases, ValidAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const GraphCase gc = GenerateGraphCase(seed);
    EXPECT_TRUE(gc.list.Validate().ok()) << "seed " << seed;
    ASSERT_GT(gc.list.num_vertices(), 0u) << "seed " << seed;
    EXPECT_LT(gc.root, gc.list.num_vertices()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace graphsd::testing
