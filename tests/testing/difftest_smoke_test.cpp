// Bounded-seed differential smoke: the tier-1 face of the randomized
// harness. Fixed seeds keep it deterministic and fast (< 30 s); the
// unbounded soak lives in ctest's `soak` configuration
// (tools/CMakeLists.txt).
#include "testing/difftest.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "io/file.hpp"
#include "testing/artifact.hpp"
#include "testing/graph_cases.hpp"
#include "testing/temp_dir.hpp"
#include "testing_util.hpp"

namespace graphsd::testing {
namespace {

// The acceptance bar: >= 200 randomized (graph, config) combinations with
// zero divergences. 8 seeds x 7 algorithms x 2 datasets x 3 model configs
// gives ~336 (minus gather/edgeless skips).
TEST(DifftestSmoke, RandomizedSweepHasNoDivergences) {
  SweepOptions options;
  options.seed0 = 1;
  options.num_seeds = 8;
  const SweepSummary summary = ValueOrDie(RunSweep(options));
  EXPECT_GE(summary.combos_run, 200u);
  EXPECT_EQ(summary.graphs, 8u);
  EXPECT_EQ(summary.datasets_built, 16u);
  ASSERT_TRUE(summary.divergences.empty())
      << DescribeDivergence(summary.divergences[0]);
}

// A second seed window, so two tier-1 runs don't retread the same graphs.
TEST(DifftestSmoke, SecondSeedWindowHasNoDivergences) {
  SweepOptions options;
  options.seed0 = 101;
  options.num_seeds = 4;
  const SweepSummary summary = ValueOrDie(RunSweep(options));
  EXPECT_GE(summary.combos_run, 100u);
  ASSERT_TRUE(summary.divergences.empty())
      << DescribeDivergence(summary.divergences[0]);
}

// The harness must actually catch a bug: inject a deliberate engine fault
// (drop every Apply of the lexicographically largest edge), confirm the
// sweep reports a divergence, emits a minimized artifact, and that
// replaying the artifact reproduces the divergence deterministically.
TEST(DifftestSmoke, InjectedFaultIsCaughtAndReplayable) {
  ScratchDir scratch = ValueOrDie(ScratchDir::Create());
  SweepOptions options;
  options.seed0 = 1;
  options.num_seeds = 8;
  options.fault = EngineFault::kDropMaxEdge;
  options.artifact_dir = scratch.path() + "/artifacts";
  const SweepSummary summary = ValueOrDie(RunSweep(options));
  ASSERT_FALSE(summary.divergences.empty())
      << "injected fault was not detected";
  ASSERT_FALSE(summary.artifact_paths.empty());

  const ReproArtifact artifact =
      ValueOrDie(ReadArtifact(summary.artifact_paths[0]));
  EXPECT_EQ(artifact.fault, EngineFault::kDropMaxEdge);
  const auto replayed =
      ValueOrDie(ReplayArtifact(artifact, scratch.path() + "/replay"));
  ASSERT_TRUE(replayed.has_value())
      << "artifact did not reproduce the divergence";
}

// Same fault on a hand-built path: BFS from 0 with the final edge dropped
// leaves the last vertex unreached — a value-level divergence at a known
// vertex.
TEST(DifftestSmoke, DroppedEdgeDivergesOnPath) {
  ScratchDir scratch = ValueOrDie(ScratchDir::Create());
  const EdgeList graph = GeneratePath(6);
  const BuiltDataset built = ValueOrDie(
      BuildCaseDataset(graph, "none", 2, scratch.path() + "/ds"));
  TrialConfig config;
  config.algo = "bfs";
  config.fault = EngineFault::kDropMaxEdge;  // drops 4 -> 5
  const auto divergence =
      ValueOrDie(RunTrial(graph, 0, *built.dataset, config));
  ASSERT_TRUE(divergence.has_value());
  // Vertex 5 never activates: the iteration count diverges first (engine
  // drains one wave early), or the value check flags vertex 5 — both are
  // acceptable detections of this fault.
  EXPECT_TRUE(divergence->invariant == "iterations" ||
              (divergence->invariant == "value" && divergence->vertex == 5))
      << DescribeDivergence(*divergence);

  // Without the fault the same trial is clean.
  config.fault = EngineFault::kNone;
  const auto clean = ValueOrDie(RunTrial(graph, 0, *built.dataset, config));
  EXPECT_FALSE(clean.has_value());
}

TEST(DifftestArtifact, RoundTripsExactly) {
  ScratchDir scratch = ValueOrDie(ScratchDir::Create());
  ReproArtifact artifact;
  artifact.seed = 1234;
  artifact.family = "power_law+self_loops";
  artifact.invariant = "value";
  artifact.algo = "sssp";
  artifact.root = 3;
  artifact.codec = "varint-delta";
  artifact.p = 4;
  artifact.model = "on_demand";
  artifact.cross_iteration = true;
  artifact.prefetch_depth = 4;
  artifact.threads = 4;
  artifact.fault = EngineFault::kDropMaxEdge;
  EdgeList graph(5);
  graph.AddEdge(0, 1, 0.125f);
  graph.AddEdge(1, 4, 3.9999999f);  // not exactly representable in decimal
  graph.AddEdge(4, 4, 1e-30f);
  artifact.graph = std::move(graph);

  const std::string path = scratch.path() + "/artifact.txt";
  ASSERT_OK(WriteArtifact(artifact, path));
  const ReproArtifact loaded = ValueOrDie(ReadArtifact(path));

  EXPECT_EQ(loaded.seed, artifact.seed);
  EXPECT_EQ(loaded.family, artifact.family);
  EXPECT_EQ(loaded.invariant, artifact.invariant);
  EXPECT_EQ(loaded.algo, artifact.algo);
  EXPECT_EQ(loaded.root, artifact.root);
  EXPECT_EQ(loaded.codec, artifact.codec);
  EXPECT_EQ(loaded.p, artifact.p);
  EXPECT_EQ(loaded.model, artifact.model);
  EXPECT_EQ(loaded.cross_iteration, artifact.cross_iteration);
  EXPECT_EQ(loaded.prefetch_depth, artifact.prefetch_depth);
  EXPECT_EQ(loaded.threads, artifact.threads);
  EXPECT_EQ(loaded.fault, artifact.fault);
  ASSERT_EQ(loaded.graph.num_edges(), artifact.graph.num_edges());
  ASSERT_EQ(loaded.graph.num_vertices(), artifact.graph.num_vertices());
  for (std::size_t k = 0; k < artifact.graph.num_edges(); ++k) {
    EXPECT_EQ(loaded.graph.edges()[k].src, artifact.graph.edges()[k].src);
    EXPECT_EQ(loaded.graph.edges()[k].dst, artifact.graph.edges()[k].dst);
    // %a hex floats must round-trip bit for bit.
    EXPECT_EQ(loaded.graph.weights()[k], artifact.graph.weights()[k]);
  }
}

TEST(DifftestArtifact, RejectsMalformedFiles) {
  ScratchDir scratch = ValueOrDie(ScratchDir::Create());
  const std::string path = scratch.path() + "/bad.txt";

  // Wrong header.
  ASSERT_OK(io::WriteStringToFile(path, "not-an-artifact\nend\n"));
  EXPECT_FALSE(ReadArtifact(path).ok());

  // Missing terminator.
  ASSERT_OK(io::WriteStringToFile(
      path, "graphsd-difftest-repro v1\nalgo bfs\nvertices 1\n"));
  EXPECT_FALSE(ReadArtifact(path).ok());

  // Declared edge count disagrees with edge lines.
  ASSERT_OK(io::WriteStringToFile(
      path,
      "graphsd-difftest-repro v1\nalgo bfs\nroot 0\nvertices 2\nedges 2\n"
      "weighted 0\ne 0 1\nend\n"));
  EXPECT_FALSE(ReadArtifact(path).ok());
}

// The minimizer must shrink a failing case while preserving the failure.
TEST(DifftestMinimizer, ShrinksFaultRepro) {
  ScratchDir scratch = ValueOrDie(ScratchDir::Create());
  // A star of noise edges plus a chain ending in the graph's max edge
  // (34 -> 35), which the fault drops: only the chain back to the root is
  // needed to reproduce vertex 35 going unreached.
  EdgeList graph(36);
  for (VertexId v = 1; v <= 30; ++v) graph.AddEdge(0, v);
  for (VertexId v = 30; v < 35; ++v) graph.AddEdge(v, v + 1);

  ReproArtifact artifact;
  artifact.algo = "bfs";
  artifact.root = 0;
  artifact.codec = "none";
  artifact.p = 2;
  artifact.model = "auto";
  artifact.threads = 1;
  artifact.fault = EngineFault::kDropMaxEdge;
  artifact.graph = graph;

  ASSERT_OK(MinimizeArtifact(artifact, scratch.path(), /*budget=*/48));
  EXPECT_LT(artifact.graph.num_edges(), graph.num_edges());
  EXPECT_LE(artifact.graph.num_vertices(), graph.num_vertices());
  // Still diverging after minimization.
  const auto replayed =
      ValueOrDie(ReplayArtifact(artifact, scratch.path() + "/replay"));
  EXPECT_TRUE(replayed.has_value());
}

}  // namespace
}  // namespace graphsd::testing
