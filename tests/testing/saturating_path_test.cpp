// Non-finite guards in the monotone path programs, plus oracle-backed
// saturating-path checks: float-max weight chains must stay finite and
// bitwise-identical between the engine and the in-memory oracle.
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "algos/sssp.hpp"
#include "algos/widest_path.hpp"
#include "core/frontier.hpp"
#include "core/vertex_state.hpp"
#include "testing/difftest.hpp"
#include "testing/temp_dir.hpp"
#include "testing_util.hpp"

namespace graphsd::testing {
namespace {

constexpr float kFloatMax = std::numeric_limits<float>::max();

// Weights are validated finite and nonnegative at build/load, so these
// guards only fire on corrupted state — but when they do, a non-finite
// candidate must neither win a combine nor activate the destination.
TEST(NonFiniteGuards, SsspRejectsNonFiniteCandidates) {
  algos::Sssp sssp(0);
  core::VertexState state(2, sssp.num_value_arrays(), /*gather=*/false);
  core::Frontier initial(2);
  const std::vector<std::uint32_t> degrees{1, 0};
  sssp.Bind(degrees);
  sssp.Init(state, initial);
  sssp.MakeContribution(state, 0, core::ContribSlot::kPrimary);

  // A -inf weight would otherwise beat the unreached (+inf) distance.
  EXPECT_FALSE(sssp.Apply(state, 0, 1,
                          -std::numeric_limits<float>::infinity(),
                          core::ContribSlot::kPrimary));
  EXPECT_TRUE(std::isinf(sssp.ValueOf(state, 1)));
  EXPECT_FALSE(sssp.Apply(state, 0, 1,
                          std::numeric_limits<float>::quiet_NaN(),
                          core::ContribSlot::kPrimary));
  EXPECT_TRUE(std::isinf(sssp.ValueOf(state, 1)));

  // The largest finite weight still relaxes normally.
  EXPECT_TRUE(sssp.Apply(state, 0, 1, kFloatMax,
                         core::ContribSlot::kPrimary));
  EXPECT_EQ(sssp.ValueOf(state, 1), static_cast<double>(kFloatMax));
}

TEST(NonFiniteGuards, WidestPathRejectsNonFiniteBottleneck) {
  algos::WidestPath widest(0);
  core::VertexState state(2, widest.num_value_arrays(), /*gather=*/false);
  core::Frontier initial(2);
  const std::vector<std::uint32_t> degrees{1, 0};
  widest.Bind(degrees);
  widest.Init(state, initial);
  widest.MakeContribution(state, 0, core::ContribSlot::kPrimary);

  // The root's width is +inf, so min(src_width, +inf weight) = +inf would
  // install an unbeatable non-finite width without the guard.
  EXPECT_FALSE(widest.Apply(state, 0, 1,
                            std::numeric_limits<float>::infinity(),
                            core::ContribSlot::kPrimary));
  EXPECT_EQ(widest.ValueOf(state, 1), 0.0);  // still unreached
  EXPECT_FALSE(widest.Apply(state, 0, 1,
                            std::numeric_limits<float>::quiet_NaN(),
                            core::ContribSlot::kPrimary));
  EXPECT_EQ(widest.ValueOf(state, 1), 0.0);

  EXPECT_TRUE(widest.Apply(state, 0, 1, kFloatMax,
                           core::ContribSlot::kPrimary));
  EXPECT_EQ(widest.ValueOf(state, 1), static_cast<double>(kFloatMax));
}

// Runs every forced-model / cross-iteration / thread combination of one
// algorithm over `graph` through the differential harness; any divergence
// from the oracle (values are compared bitwise for these monotone
// algorithms) fails the test.
void ExpectAllTrialsMatchOracle(const EdgeList& graph, VertexId root,
                                const std::string& algo) {
  ScratchDir scratch = ValueOrDie(ScratchDir::Create());
  const BuiltDataset built =
      ValueOrDie(BuildCaseDataset(graph, "none", 2, scratch.path() + "/ds"));
  for (const char* model : {"auto", "on_demand", "full"}) {
    for (bool cross : {false, true}) {
      for (std::uint32_t threads : {1u, 4u}) {
        TrialConfig config;
        config.algo = algo;
        config.model = model;
        config.cross_iteration = cross;
        config.threads = threads;
        const auto divergence =
            ValueOrDie(RunTrial(graph, root, *built.dataset, config));
        EXPECT_FALSE(divergence.has_value())
            << algo << " model=" << model << " cross=" << cross
            << " threads=" << threads << ": "
            << DescribeDivergence(*divergence);
      }
    }
  }
}

// Chained float-max-scale weights: path sums approach the float range but
// stay finite in the double domain, and the direct heavy edge must lose to
// the lighter chain exactly as in the oracle.
TEST(SaturatingPaths, SsspFloatMaxChainsMatchOracleBitwise) {
  EdgeList graph(6);
  const float big = kFloatMax / 8;
  for (VertexId v = 0; v + 1 < 5; ++v) graph.AddEdge(v, v + 1, big);
  graph.AddEdge(0, 4, kFloatMax);  // heavier than the whole chain
  graph.AddEdge(4, 5, big);
  ASSERT_OK(graph.Validate());
  ExpectAllTrialsMatchOracle(graph, 0, "sssp");
}

TEST(SaturatingPaths, WidestPathFloatMaxChainsMatchOracleBitwise) {
  EdgeList graph(6);
  // A wide chain with one narrow bottleneck edge, against a direct
  // float-max edge: the bottleneck combine saturates at finite float-max.
  graph.AddEdge(0, 1, kFloatMax);
  graph.AddEdge(1, 2, kFloatMax);
  graph.AddEdge(2, 3, 1.0f);
  graph.AddEdge(3, 4, kFloatMax);
  graph.AddEdge(0, 4, kFloatMax);
  graph.AddEdge(4, 5, kFloatMax / 2);
  ASSERT_OK(graph.Validate());
  ExpectAllTrialsMatchOracle(graph, 0, "widest_path");
}

}  // namespace
}  // namespace graphsd::testing
