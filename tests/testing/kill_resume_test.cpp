// Crash-safety differential smoke (DESIGN.md §12): kill checkpointed engine
// runs at randomized points, damage checkpoint slots, resume from disk and
// require bit-identical final values against the uninterrupted run.
#include "testing/difftest.hpp"

#include <gtest/gtest.h>

#include "testing/graph_cases.hpp"
#include "testing/temp_dir.hpp"
#include "testing_util.hpp"

namespace graphsd::testing {
namespace {

// The acceptance bar: >= 100 randomized (algorithm, model, codec, kill
// point, kill style, corruption) combinations, all bit-identical. Three
// seeds give 3 x 7 algos x 2 datasets x 3 models = 126 combos.
TEST(KillResumeSweep, RandomizedSweepIsBitIdentical) {
  KillResumeSweepOptions options;
  options.seed0 = 1;
  options.num_seeds = 3;
  const SweepSummary summary = ValueOrDie(RunKillResumeSweep(options));
  EXPECT_GE(summary.combos_run, 100u);
  EXPECT_EQ(summary.graphs, 3u);
  ASSERT_TRUE(summary.divergences.empty())
      << DescribeDivergence(summary.divergences[0]);
}

// Targeted corruption-recovery trials: kill late enough that two valid
// slots exist, then damage the newest (bit flip and truncation) and require
// the resume to recover through the older slot on every algorithm class.
TEST(KillResumeSweep, CorruptSlotRecoveryAcrossAlgoClasses) {
  ScratchDir scratch = ValueOrDie(ScratchDir::Create());
  const GraphCase graph_case = GenerateGraphCase(11);
  const BuiltDataset built = ValueOrDie(BuildCaseDataset(
      graph_case.list, "varint-delta", 4, scratch.path() + "/ds"));
  int trial = 0;
  for (const char* algo : {"bfs", "pagerank_delta", "pagerank"}) {
    for (const int corrupt : {1, 2}) {
      KillResumeConfig config;
      config.algo = algo;
      config.model = "full";
      config.kill_iteration = 3;
      config.corrupt_newest = corrupt;
      const auto divergence = ValueOrDie(RunKillResumeTrial(
          graph_case.list, graph_case.root, *built.dataset,
          scratch.path() + "/t" + std::to_string(trial++), config));
      EXPECT_FALSE(divergence.has_value())
          << algo << " corrupt=" << corrupt << ": "
          << DescribeDivergence(*divergence);
    }
  }
}

}  // namespace
}  // namespace graphsd::testing
