// Shared test fixtures and helpers.
#pragma once

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "graph/edge_list.hpp"
#include "io/device.hpp"
#include "partition/grid_builder.hpp"
#include "partition/grid_dataset.hpp"
#include "util/status.hpp"

namespace graphsd::testing {

/// Creates (and on teardown removes) a unique scratch directory.
class TempDir {
 public:
  TempDir() {
    char templ[] = "/tmp/graphsd_test_XXXXXX";
    char* made = ::mkdtemp(templ);
    EXPECT_NE(made, nullptr);
    path_ = made;
  }
  ~TempDir() { (void)io::RemoveTree(path_); }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const noexcept { return path_; }
  std::string Sub(const std::string& name) const { return path_ + "/" + name; }

 private:
  std::string path_;
};

/// Asserts a Status is OK with a useful message.
#define ASSERT_OK(expr)                                              \
  do {                                                               \
    const ::graphsd::Status status_ = (expr);                        \
    ASSERT_TRUE(status_.ok()) << status_.ToString();                 \
  } while (0)

#define EXPECT_OK(expr)                                              \
  do {                                                               \
    const ::graphsd::Status status_ = (expr);                        \
    EXPECT_TRUE(status_.ok()) << status_.ToString();                 \
  } while (0)

/// Unwraps a Result<T> or fails the test.
template <typename T>
T ValueOrDie(Result<T> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Builds a grid dataset for `list` in `dir` with `p` intervals using a
/// zero-cost accounting device (tests that need modeled time make their
/// own).
inline partition::GridManifest BuildTestGrid(const EdgeList& list,
                                             io::Device& device,
                                             const std::string& dir,
                                             std::uint32_t p,
                                             const std::string& name = "test",
                                             const std::string& codec = "none") {
  partition::GridBuildOptions options;
  options.num_intervals = p;
  options.name = name;
  options.codec = codec;
  return ValueOrDie(partition::BuildGrid(list, device, dir, options));
}

}  // namespace graphsd::testing
