#include "graph/generators.hpp"

#include <algorithm>
#include <gtest/gtest.h>

namespace graphsd {
namespace {

TEST(GenerateRmat, DeterministicForSameSeed) {
  RmatOptions options;
  options.scale = 8;
  options.edge_factor = 4;
  const EdgeList a = GenerateRmat(options);
  const EdgeList b = GenerateRmat(options);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(GenerateRmat, DifferentSeedsDiffer) {
  RmatOptions options;
  options.scale = 8;
  RmatOptions other = options;
  other.seed = 99;
  EXPECT_NE(GenerateRmat(options).edges(), GenerateRmat(other).edges());
}

TEST(GenerateRmat, RespectsScaleAndValidates) {
  RmatOptions options;
  options.scale = 9;
  options.edge_factor = 8;
  const EdgeList g = GenerateRmat(options);
  EXPECT_EQ(g.num_vertices(), 1u << 9);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(GenerateRmat, DedupRemovesSelfLoopsAndDuplicates) {
  RmatOptions options;
  options.scale = 7;
  options.dedup = true;
  const EdgeList g = GenerateRmat(options);
  for (const Edge& e : g.edges()) EXPECT_NE(e.src, e.dst);
  auto copy = g.edges();
  std::sort(copy.begin(), copy.end());
  EXPECT_TRUE(std::adjacent_find(copy.begin(), copy.end()) == copy.end());
}

TEST(GenerateRmat, ProducesSkewedDegrees) {
  RmatOptions options;
  options.scale = 10;
  options.edge_factor = 8;
  const EdgeList g = GenerateRmat(options);
  const auto degrees = g.OutDegrees();
  const std::uint32_t max_degree =
      *std::max_element(degrees.begin(), degrees.end());
  const double avg =
      static_cast<double>(g.num_edges()) / g.num_vertices();
  // Power-law skew: the biggest hub is far above the average.
  EXPECT_GT(max_degree, 8 * avg);
}

TEST(GenerateRmat, WeightedWhenRequested) {
  RmatOptions options;
  options.scale = 6;
  options.max_weight = 5.0;
  const EdgeList g = GenerateRmat(options);
  ASSERT_TRUE(g.weighted());
  for (const Weight w : g.weights()) {
    EXPECT_GE(w, 1.0f);
    EXPECT_LT(w, 5.0f);
  }
}

TEST(GenerateErdosRenyi, EdgeCountAndRange) {
  ErdosRenyiOptions options;
  options.num_vertices = 100;
  options.num_edges = 500;
  options.dedup = false;
  const EdgeList g = GenerateErdosRenyi(options);
  EXPECT_EQ(g.num_edges(), 500u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GenerateWebGraph, HasStrongLocality) {
  WebGraphOptions options;
  options.num_vertices = 2000;
  options.avg_degree = 8;
  options.locality = 0.9;
  options.locality_window = 32;
  const EdgeList g = GenerateWebGraph(options);
  std::uint64_t local = 0;
  for (const Edge& e : g.edges()) {
    if (e.src / 32 == e.dst / 32) ++local;  // same ID cluster
  }
  // After dedup the ratio shifts a little, but locality must dominate.
  EXPECT_GT(static_cast<double>(local) / g.num_edges(), 0.6);
}

TEST(GeneratePath, ExactStructure) {
  const EdgeList g = GeneratePath(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(g.edges()[v], (Edge{v, v + 1}));
  }
}

TEST(GenerateRing, ClosesTheLoop) {
  const EdgeList g = GenerateRing(4);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.edges().back(), (Edge{3, 0}));
}

TEST(GenerateStar, HubFansOut) {
  const EdgeList g = GenerateStar(6);
  EXPECT_EQ(g.num_edges(), 5u);
  for (const Edge& e : g.edges()) EXPECT_EQ(e.src, 0u);
}

TEST(GenerateComplete, AllPairsNoSelfLoops) {
  const EdgeList g = GenerateComplete(5);
  EXPECT_EQ(g.num_edges(), 20u);
  for (const Edge& e : g.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(GenerateGrid2D, RowColumnStructure) {
  const EdgeList g = GenerateGrid2D(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // Right edges: 3 rows * 3 = 9; down edges: 2 * 4 = 8.
  EXPECT_EQ(g.num_edges(), 17u);
}

TEST(GenerateGrid2D, WeightedVariant) {
  const EdgeList g = GenerateGrid2D(4, 4, 1, 10.0);
  EXPECT_TRUE(g.weighted());
  EXPECT_EQ(g.weights().size(), g.num_edges());
}

}  // namespace
}  // namespace graphsd
