// Tests for the crawl-structure features of the web generator (clusters,
// homepage/site hubs, bounded long-range links, whiskers) and the
// AppendWhiskers utility — the structural properties DESIGN.md §5.7 calls
// load-bearing for the benchmark shapes.
#include <algorithm>
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/reference_algorithms.hpp"

namespace graphsd {
namespace {

WebGraphOptions BaseOptions() {
  WebGraphOptions o;
  o.num_vertices = 4096;
  o.avg_degree = 12;
  o.locality = 0.9;
  o.locality_window = 32;
  o.seed = 5;
  return o;
}

TEST(WebGraph, Deterministic) {
  const EdgeList a = GenerateWebGraph(BaseOptions());
  const EdgeList b = GenerateWebGraph(BaseOptions());
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(WebGraph, HomepageBiasConcentratesInDegree) {
  WebGraphOptions with = BaseOptions();
  with.homepage_bias = 0.6;
  WebGraphOptions without = BaseOptions();
  without.homepage_bias = 0.0;
  const auto in_with = GenerateWebGraph(with).InDegrees();
  const auto in_without = GenerateWebGraph(without).InDegrees();
  // Average in-degree of cluster bases must be far higher with the bias.
  auto homepage_avg = [&](const std::vector<std::uint32_t>& in) {
    std::uint64_t total = 0;
    std::uint64_t count = 0;
    for (VertexId v = 0; v < 4096; v += 32) {
      total += in[v];
      ++count;
    }
    return static_cast<double>(total) / count;
  };
  EXPECT_GT(homepage_avg(in_with), 2.0 * homepage_avg(in_without));
}

TEST(WebGraph, SiteHubsHaveTrimmedOutDegree) {
  WebGraphOptions o = BaseOptions();
  o.homepage_bias = 0.5;
  const EdgeList g = GenerateWebGraph(o);
  const auto out = g.OutDegrees();
  const VertexId site = 32 * 32;  // locality_window * 32
  for (VertexId v = 0; v < g.num_vertices(); v += site) {
    EXPECT_LE(out[v], 3u) << "site hub " << v;
  }
}

TEST(WebGraph, LongRangeWindowBoundsNonLocalLinks) {
  WebGraphOptions o = BaseOptions();
  o.long_range_window = 128;
  o.locality = 0.0;  // every link is long-range
  o.homepage_bias = 0.0;
  const EdgeList g = GenerateWebGraph(o);
  for (const Edge& e : g.edges()) {
    const VertexId fwd = (e.dst + g.num_vertices() - e.src) % g.num_vertices();
    EXPECT_GE(fwd, 1u);
    EXPECT_LE(fwd, 128u);
  }
}

TEST(WebGraph, WhiskersOccupyTopIdsAsChains) {
  WebGraphOptions o = BaseOptions();
  o.whisker_fraction = 0.25;
  o.whisker_length = 16;
  const EdgeList g = GenerateWebGraph(o);
  const VertexId core_n = g.num_vertices() - 1024;  // 25% of 4096
  const auto out = g.OutDegrees();
  std::uint64_t chain_edges = 0;
  for (const Edge& e : g.edges()) {
    if (e.src >= core_n) {
      EXPECT_EQ(e.dst, e.src + 1);  // whisker vertices only chain forward
      ++chain_edges;
    }
  }
  EXPECT_GT(chain_edges, 900u);  // ~1024 minus one tail per chain
  // Chain interiors have out-degree exactly 1; chain tails 0.
  for (VertexId v = core_n; v < g.num_vertices(); ++v) {
    EXPECT_LE(out[v], 1u);
  }
}

TEST(WebGraph, WhiskersMakeBfsTailLong) {
  WebGraphOptions shallow = BaseOptions();
  WebGraphOptions deep = BaseOptions();
  deep.whisker_fraction = 0.25;
  deep.whisker_length = 64;
  const EdgeList g_shallow = GenerateWebGraph(shallow);
  const EdgeList g_deep = GenerateWebGraph(deep);
  auto max_level = [](const EdgeList& g) {
    const auto level = ReferenceBfs(Symmetrize(g), 0);
    std::uint32_t best = 0;
    for (const auto l : level) {
      if (l != kUnreachedLevel) best = std::max(best, l);
    }
    return best;
  };
  EXPECT_GE(max_level(g_deep), max_level(g_shallow) + 32);
}

TEST(AppendWhiskers, AddsExpectedStructure) {
  EdgeList g = GenerateRing(100);
  AppendWhiskers(g, 40, 10, /*seed=*/3);
  EXPECT_EQ(g.num_vertices(), 140u);
  // 40 whisker vertices in 4 chains: 4 head links + 4*9 chain links.
  EXPECT_EQ(g.num_edges(), 100u + 4 + 36);
  for (const Edge& e : g.edges()) {
    if (e.src >= 100) {
      EXPECT_EQ(e.dst, e.src + 1);
    }
  }
  EXPECT_TRUE(g.Validate().ok());
}

TEST(AppendWhiskers, HeadsRespectRangeFraction) {
  EdgeList g = GenerateRing(1000);
  AppendWhiskers(g, 100, 5, /*seed=*/3, /*max_weight=*/0.0,
                 /*head_range_fraction=*/0.1);
  for (const Edge& e : g.edges()) {
    if (e.dst >= 1000 && e.src < 1000) {
      EXPECT_LT(e.src, 100u);  // heads confined to the first 10% of IDs
    }
  }
}

TEST(AppendWhiskers, WeightedGraphGetsWeightedWhiskers) {
  EdgeList g = GeneratePath(50, 2.0);
  AppendWhiskers(g, 20, 5, /*seed=*/1, /*max_weight=*/7.0);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.weights().size(), g.num_edges());
  for (std::uint64_t i = 49; i < g.num_edges(); ++i) {
    EXPECT_GE(g.weights()[i], 1.0f);
    EXPECT_LT(g.weights()[i], 7.0f);
  }
}

TEST(AppendWhiskers, PartialLastChain) {
  EdgeList g = GenerateRing(10);
  AppendWhiskers(g, 7, 5, /*seed=*/1);  // one full chain of 5, one of 2
  EXPECT_EQ(g.num_vertices(), 17u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(AppendWhiskers, WholeGraphStaysConnectedForCc) {
  EdgeList g = GenerateRing(64);
  AppendWhiskers(g, 64, 8, /*seed=*/9);
  const auto labels = ReferenceConnectedComponents(Symmetrize(g));
  for (const auto label : labels) EXPECT_EQ(label, 0u);
}

}  // namespace
}  // namespace graphsd
