#include "graph/reference_algorithms.hpp"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace graphsd {
namespace {

TEST(Symmetrize, AddsReverseEdges) {
  EdgeList g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const EdgeList sym = Symmetrize(g);
  EXPECT_EQ(sym.num_edges(), 4u);
  const auto& edges = sym.edges();
  EXPECT_NE(std::find(edges.begin(), edges.end(), Edge{1, 0}), edges.end());
  EXPECT_NE(std::find(edges.begin(), edges.end(), Edge{2, 1}), edges.end());
}

TEST(Symmetrize, PreservesWeights) {
  EdgeList g(2);
  g.AddEdge(0, 1, 7.0f);
  const EdgeList sym = Symmetrize(g);
  ASSERT_EQ(sym.num_edges(), 2u);
  EXPECT_FLOAT_EQ(sym.weights()[0], 7.0f);
  EXPECT_FLOAT_EQ(sym.weights()[1], 7.0f);
}

TEST(ReferencePageRank, SumsToOneWithoutDanglingLoss) {
  // A ring has no dangling vertices, so mass is conserved.
  const EdgeList g = GenerateRing(10);
  const auto rank = ReferencePageRank(g, 20);
  const double total = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ReferencePageRank, RingIsUniform) {
  const EdgeList g = GenerateRing(8);
  const auto rank = ReferencePageRank(g, 30);
  for (double r : rank) EXPECT_NEAR(r, 1.0 / 8, 1e-12);
}

TEST(ReferencePageRank, StarHubFeedsLeaves) {
  // Star: 0 -> {1..5}. After convergence leaves outrank nothing; vertex 0
  // only keeps the base rank, leaves get base + share of hub.
  const EdgeList g = GenerateStar(6);
  const auto rank = ReferencePageRank(g, 50);
  EXPECT_NEAR(rank[0], 0.15 / 6, 1e-9);
  for (VertexId v = 1; v < 6; ++v) {
    EXPECT_GT(rank[v], rank[0]);
    EXPECT_NEAR(rank[v], rank[1], 1e-12);  // symmetry
  }
}

TEST(ReferencePageRank, ZeroIterationsIsInitialValue) {
  const EdgeList g = GenerateRing(4);
  const auto rank = ReferencePageRank(g, 0);
  for (double r : rank) EXPECT_DOUBLE_EQ(r, 0.25);
}

TEST(ReferencePageRankDelta, ConvergesToPageRankFixpoint) {
  RmatOptions options;
  options.scale = 8;
  options.edge_factor = 6;
  const EdgeList g = GenerateRmat(options);
  const auto pr = ReferencePageRank(g, 100);
  const auto prd = ReferencePageRankDelta(g, 1e-13, 10000);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(prd[v], pr[v], 1e-8) << "vertex " << v;
  }
}

TEST(ReferencePageRankDelta, LooseEpsilonStopsEarlyButClose) {
  const EdgeList g = GenerateRing(16);
  const auto tight = ReferencePageRankDelta(g, 1e-14, 10000);
  const auto loose = ReferencePageRankDelta(g, 1e-4, 10000);
  for (VertexId v = 0; v < 16; ++v) {
    EXPECT_NEAR(loose[v], tight[v], 1e-2);
  }
}

TEST(ReferenceConnectedComponents, DisjointRingsGetDistinctLabels) {
  EdgeList g(8);
  // Two 4-cycles: {0..3} and {4..7}.
  for (VertexId v = 0; v < 4; ++v) g.AddEdge(v, (v + 1) % 4);
  for (VertexId v = 4; v < 8; ++v) g.AddEdge(v, v == 7 ? 4 : v + 1);
  const EdgeList sym = Symmetrize(g);
  const auto label = ReferenceConnectedComponents(sym);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(label[v], 0u);
  for (VertexId v = 4; v < 8; ++v) EXPECT_EQ(label[v], 4u);
}

TEST(ReferenceConnectedComponents, SingletonsAreTheirOwnComponent) {
  EdgeList g(5);
  g.AddEdge(0, 1);
  const auto label = ReferenceConnectedComponents(Symmetrize(g));
  EXPECT_EQ(label[0], 0u);
  EXPECT_EQ(label[1], 0u);
  for (VertexId v = 2; v < 5; ++v) EXPECT_EQ(label[v], v);
}

TEST(ReferenceSssp, PathDistancesAreCumulative) {
  const EdgeList g = GeneratePath(5, 2.0);
  const auto dist = ReferenceSssp(g, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(dist[v], 2.0 * v);
}

TEST(ReferenceSssp, UnreachableIsInfinity) {
  EdgeList g(3);
  g.AddEdge(0, 1, 1.0f);
  const auto dist = ReferenceSssp(g, 0);
  EXPECT_TRUE(std::isinf(dist[2]));
}

TEST(ReferenceSssp, PicksShorterOfTwoRoutes) {
  EdgeList g(4);
  g.AddEdge(0, 1, 1.0f);
  g.AddEdge(1, 3, 1.0f);
  g.AddEdge(0, 2, 5.0f);
  g.AddEdge(2, 3, 0.5f);
  const auto dist = ReferenceSssp(g, 0);
  EXPECT_DOUBLE_EQ(dist[3], 2.0);
}

TEST(ReferenceBfs, LevelsOnGrid) {
  const EdgeList g = GenerateGrid2D(3, 3);
  const auto level = ReferenceBfs(g, 0);
  EXPECT_EQ(level[0], 0u);
  EXPECT_EQ(level[1], 1u);
  EXPECT_EQ(level[3], 1u);
  EXPECT_EQ(level[4], 2u);
  EXPECT_EQ(level[8], 4u);
}

TEST(ReferenceBfs, UnreachedMarker) {
  EdgeList g(3);
  g.AddEdge(0, 1);
  const auto level = ReferenceBfs(g, 0);
  EXPECT_EQ(level[2], kUnreachedLevel);
}

}  // namespace
}  // namespace graphsd
