#include "graph/edge_list.hpp"

#include <limits>

#include <gtest/gtest.h>

namespace graphsd {
namespace {

TEST(EdgeList, EmptyGraph) {
  EdgeList list(5);
  EXPECT_EQ(list.num_vertices(), 5u);
  EXPECT_EQ(list.num_edges(), 0u);
  EXPECT_FALSE(list.weighted());
  EXPECT_TRUE(list.Validate().ok());
}

TEST(EdgeList, AddEdgeGrowsVertexCount) {
  EdgeList list;
  list.AddEdge(3, 7);
  EXPECT_EQ(list.num_vertices(), 8u);
  EXPECT_EQ(list.num_edges(), 1u);
}

TEST(EdgeList, WeightedEdgesKeepParallelWeights) {
  EdgeList list;
  list.AddEdge(0, 1, 2.5f);
  list.AddEdge(1, 2, 0.5f);
  EXPECT_TRUE(list.weighted());
  ASSERT_EQ(list.weights().size(), 2u);
  EXPECT_FLOAT_EQ(list.weights()[0], 2.5f);
}

TEST(EdgeList, DegreesCountBothDirections) {
  EdgeList list(4);
  list.AddEdge(0, 1);
  list.AddEdge(0, 2);
  list.AddEdge(1, 2);
  const auto out = list.OutDegrees();
  const auto in = list.InDegrees();
  EXPECT_EQ(out, (std::vector<std::uint32_t>{2, 1, 0, 0}));
  EXPECT_EQ(in, (std::vector<std::uint32_t>{0, 1, 2, 0}));
}

TEST(EdgeList, ValidateCatchesOutOfRange) {
  EdgeList list(3);
  list.edges().push_back(Edge{0, 9});  // bypass AddEdge's auto-grow
  EXPECT_FALSE(list.Validate().ok());
}

TEST(EdgeList, ValidateRejectsNegativeWeight) {
  EdgeList list(3);
  list.AddEdge(0, 1, 1.0f);
  list.AddEdge(1, 2, -0.5f);
  const Status status = list.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(EdgeList, ValidateRejectsNonFiniteWeights) {
  EdgeList nan_list(2);
  nan_list.AddEdge(0, 1, std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(nan_list.Validate().code(), StatusCode::kInvalidArgument);

  EdgeList inf_list(2);
  inf_list.AddEdge(0, 1, std::numeric_limits<float>::infinity());
  EXPECT_EQ(inf_list.Validate().code(), StatusCode::kInvalidArgument);

  // The largest finite weight is valid: saturating paths are supported.
  EdgeList max_list(2);
  max_list.AddEdge(0, 1, std::numeric_limits<float>::max());
  EXPECT_TRUE(max_list.Validate().ok());
}

TEST(EdgeList, SortBySourceOrdersLexicographically) {
  EdgeList list(5);
  list.AddEdge(3, 1);
  list.AddEdge(0, 4);
  list.AddEdge(3, 0);
  list.AddEdge(1, 2);
  list.SortBySource();
  const auto& edges = list.edges();
  EXPECT_EQ(edges[0], (Edge{0, 4}));
  EXPECT_EQ(edges[1], (Edge{1, 2}));
  EXPECT_EQ(edges[2], (Edge{3, 0}));
  EXPECT_EQ(edges[3], (Edge{3, 1}));
}

TEST(EdgeList, SortBySourceKeepsWeightsAttached) {
  EdgeList list(3);
  list.AddEdge(2, 0, 20.0f);
  list.AddEdge(0, 1, 1.0f);
  list.AddEdge(1, 2, 12.0f);
  list.SortBySource();
  EXPECT_EQ(list.edges()[0], (Edge{0, 1}));
  EXPECT_FLOAT_EQ(list.weights()[0], 1.0f);
  EXPECT_EQ(list.edges()[2], (Edge{2, 0}));
  EXPECT_FLOAT_EQ(list.weights()[2], 20.0f);
}

TEST(EdgeList, DedupRemovesAdjacentDuplicates) {
  EdgeList list(3);
  list.AddEdge(0, 1);
  list.AddEdge(0, 1);
  list.AddEdge(0, 2);
  list.AddEdge(0, 2);
  list.AddEdge(1, 2);
  list.SortBySource();
  list.DedupSorted();
  EXPECT_EQ(list.num_edges(), 3u);
}

TEST(EdgeList, DedupKeepsFirstWeight) {
  EdgeList list(3);
  list.AddEdge(0, 1, 5.0f);
  list.AddEdge(0, 1, 9.0f);
  list.SortBySource();
  list.DedupSorted();
  ASSERT_EQ(list.num_edges(), 1u);
  EXPECT_FLOAT_EQ(list.weights()[0], 5.0f);
}

TEST(EdgeList, RawBytesMatchesCostModelConstants) {
  EdgeList plain(3);
  plain.AddEdge(0, 1);
  plain.AddEdge(1, 2);
  EXPECT_EQ(plain.RawBytes(), 2 * kEdgeBytes);

  EdgeList weighted(3);
  weighted.AddEdge(0, 1, 1.0f);
  EXPECT_EQ(weighted.RawBytes(), kEdgeBytes + kWeightBytes);
}

TEST(EdgeTypes, DiskLayoutIsStable) {
  EXPECT_EQ(sizeof(Edge), 8u);
  EXPECT_EQ(kEdgeBytes, 8u);
  EXPECT_EQ(kWeightBytes, 4u);
}

}  // namespace
}  // namespace graphsd
