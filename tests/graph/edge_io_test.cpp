#include "graph/edge_io.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "testing_util.hpp"

namespace graphsd {
namespace {

using testing::TempDir;
using testing::ValueOrDie;

TEST(TextEdgeList, RoundTripUnweighted) {
  TempDir dir;
  EdgeList list(4);
  list.AddEdge(0, 1);
  list.AddEdge(2, 3);
  ASSERT_OK(WriteTextEdgeList(list, dir.Sub("g.txt")));
  const EdgeList read = ValueOrDie(ReadTextEdgeList(dir.Sub("g.txt")));
  EXPECT_EQ(read.num_edges(), 2u);
  EXPECT_EQ(read.edges(), list.edges());
}

TEST(TextEdgeList, RoundTripWeighted) {
  TempDir dir;
  EdgeList list(3);
  list.AddEdge(0, 1, 1.5f);
  list.AddEdge(1, 2, 2.25f);
  ASSERT_OK(WriteTextEdgeList(list, dir.Sub("g.txt")));
  const EdgeList read =
      ValueOrDie(ReadTextEdgeList(dir.Sub("g.txt"), /*weighted=*/true));
  ASSERT_TRUE(read.weighted());
  EXPECT_FLOAT_EQ(read.weights()[0], 1.5f);
  EXPECT_FLOAT_EQ(read.weights()[1], 2.25f);
}

TEST(TextEdgeList, SkipsCommentLines) {
  TempDir dir;
  ASSERT_OK(io::WriteStringToFile(dir.Sub("g.txt"),
                                  "# snap header\n% mm header\n\n1 2\n3 4\n"));
  const EdgeList read = ValueOrDie(ReadTextEdgeList(dir.Sub("g.txt")));
  EXPECT_EQ(read.num_edges(), 2u);
}

TEST(TextEdgeList, RejectsMalformedLine) {
  TempDir dir;
  ASSERT_OK(io::WriteStringToFile(dir.Sub("bad.txt"), "1 2\nnot numbers\n"));
  const auto result = ReadTextEdgeList(dir.Sub("bad.txt"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptData);
  EXPECT_NE(result.status().message().find(":2"), std::string::npos);
}

TEST(TextEdgeList, ThirdColumnIgnoredWhenUnweighted) {
  TempDir dir;
  ASSERT_OK(io::WriteStringToFile(dir.Sub("g.txt"), "0 1 3.5\n"));
  const EdgeList read = ValueOrDie(ReadTextEdgeList(dir.Sub("g.txt")));
  EXPECT_FALSE(read.weighted());
  EXPECT_EQ(read.num_edges(), 1u);
}

TEST(BinaryEdgeList, RoundTripUnweighted) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  const EdgeList list = GenerateRing(100);
  ASSERT_OK(WriteBinaryEdgeList(list, *device, dir.Sub("g.bin")));
  const EdgeList read = ValueOrDie(ReadBinaryEdgeList(*device, dir.Sub("g.bin")));
  EXPECT_EQ(read.num_vertices(), list.num_vertices());
  EXPECT_EQ(read.edges(), list.edges());
  EXPECT_FALSE(read.weighted());
}

TEST(BinaryEdgeList, RoundTripWeighted) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  RmatOptions options;
  options.scale = 6;
  options.edge_factor = 4;
  options.max_weight = 9.0;
  const EdgeList list = GenerateRmat(options);
  ASSERT_OK(WriteBinaryEdgeList(list, *device, dir.Sub("g.bin")));
  const EdgeList read = ValueOrDie(ReadBinaryEdgeList(*device, dir.Sub("g.bin")));
  EXPECT_EQ(read.edges(), list.edges());
  EXPECT_EQ(read.weights(), list.weights());
}

TEST(BinaryEdgeList, RejectsBadMagic) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  ASSERT_OK(io::WriteStringToFile(dir.Sub("bad.bin"),
                                  std::string(64, 'x')));
  const auto result = ReadBinaryEdgeList(*device, dir.Sub("bad.bin"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptData);
}

TEST(BinaryEdgeList, IoIsAccounted) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  const EdgeList list = GenerateRing(1000);
  ASSERT_OK(WriteBinaryEdgeList(list, *device, dir.Sub("g.bin")));
  const auto after_write = device->stats().Snapshot();
  EXPECT_GE(after_write.TotalWriteBytes(), list.num_edges() * sizeof(Edge));
  (void)ValueOrDie(ReadBinaryEdgeList(*device, dir.Sub("g.bin")));
  const auto after_read = device->stats().Snapshot();
  EXPECT_GE(after_read.TotalReadBytes() , list.num_edges() * sizeof(Edge));
}

}  // namespace
}  // namespace graphsd
