// Adversarial GSDE binary edge-file cases: degenerate payloads that must
// round-trip exactly (empty, single edge, duplicates) and damaged files
// that must be rejected instead of yielding garbage edges. Transient I/O
// faults are absorbed by the device retry layer.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "graph/edge_io.hpp"
#include "io/fault_injector.hpp"
#include "io/file.hpp"
#include "testing_util.hpp"

namespace graphsd {
namespace {

using testing::TempDir;
using testing::ValueOrDie;

std::uint64_t FileSize(const std::string& path) {
  io::File file = ValueOrDie(io::File::Open(path, io::OpenMode::kRead));
  return ValueOrDie(file.Size());
}

void TruncateTo(const std::string& path, std::uint64_t size) {
  io::File file =
      ValueOrDie(io::File::Open(path, io::OpenMode::kReadWrite));
  ASSERT_OK(file.Truncate(size));
}

TEST(BinaryEdgeListAdversarial, EmptyEdgeListRoundTrips) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  const EdgeList empty(5);
  ASSERT_OK(WriteBinaryEdgeList(empty, *device, dir.Sub("g.bin")));
  const EdgeList read =
      ValueOrDie(ReadBinaryEdgeList(*device, dir.Sub("g.bin")));
  EXPECT_EQ(read.num_vertices(), 5u);
  EXPECT_EQ(read.num_edges(), 0u);
}

TEST(BinaryEdgeListAdversarial, SingleEdgeRoundTrips) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  EdgeList list(2);
  list.AddEdge(1, 0, 3.5f);
  ASSERT_OK(WriteBinaryEdgeList(list, *device, dir.Sub("g.bin")));
  const EdgeList read =
      ValueOrDie(ReadBinaryEdgeList(*device, dir.Sub("g.bin")));
  EXPECT_EQ(read.edges(), list.edges());
  EXPECT_EQ(read.weights(), list.weights());
}

TEST(BinaryEdgeListAdversarial, DuplicateEdgesPreservedVerbatim) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  EdgeList list(3);
  for (int i = 0; i < 4; ++i) list.AddEdge(1, 2);
  list.AddEdge(0, 2);
  ASSERT_OK(WriteBinaryEdgeList(list, *device, dir.Sub("g.bin")));
  const EdgeList read =
      ValueOrDie(ReadBinaryEdgeList(*device, dir.Sub("g.bin")));
  EXPECT_EQ(read.num_edges(), 5u);
  EXPECT_EQ(read.edges(), list.edges());
}

TEST(BinaryEdgeListAdversarial, TruncatedHeaderRejected) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  EdgeList list(4);
  list.AddEdge(0, 1);
  ASSERT_OK(WriteBinaryEdgeList(list, *device, dir.Sub("g.bin")));
  TruncateTo(dir.Sub("g.bin"), 7);
  EXPECT_FALSE(ReadBinaryEdgeList(*device, dir.Sub("g.bin")).ok());
  EXPECT_FALSE(ReadBinaryEdgeHeader(*device, dir.Sub("g.bin")).ok());
}

TEST(BinaryEdgeListAdversarial, TruncatedBodyRejected) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  EdgeList list(8);
  for (std::uint32_t v = 0; v + 1 < 8; ++v) list.AddEdge(v, v + 1);
  ASSERT_OK(WriteBinaryEdgeList(list, *device, dir.Sub("g.bin")));
  // Drop half an edge off the end: the header's edge count no longer fits.
  TruncateTo(dir.Sub("g.bin"), FileSize(dir.Sub("g.bin")) - kEdgeBytes / 2);
  EXPECT_FALSE(ReadBinaryEdgeList(*device, dir.Sub("g.bin")).ok());
}

TEST(BinaryEdgeListAdversarial, HeaderWithoutBodyRejected) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  EdgeList list(4);
  list.AddEdge(0, 1);
  list.AddEdge(1, 2);
  ASSERT_OK(WriteBinaryEdgeList(list, *device, dir.Sub("g.bin")));
  // A valid header whose declared edges are gone entirely.
  const auto header =
      ValueOrDie(ReadBinaryEdgeHeader(*device, dir.Sub("g.bin")));
  ASSERT_GT(header.edges_offset, 0u);
  TruncateTo(dir.Sub("g.bin"), header.edges_offset);
  EXPECT_FALSE(ReadBinaryEdgeList(*device, dir.Sub("g.bin")).ok());
}

TEST(BinaryEdgeListAdversarial, TransientEioIsRetried) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  EdgeList list(16);
  for (std::uint32_t v = 0; v + 1 < 16; ++v) list.AddEdge(v, v + 1, 1.0f);
  ASSERT_OK(WriteBinaryEdgeList(list, *device, dir.Sub("g.bin")));

  io::FaultInjector injector(/*seed=*/3);
  io::FaultRule rule;
  rule.kind = io::FaultKind::kEio;
  rule.op = io::FaultOp::kRead;
  rule.path_substring = "g.bin";
  rule.nth = 1;
  rule.max_fires = 1;
  injector.AddRule(rule);
  device->set_fault_injector(&injector);
  const auto before = device->stats().Snapshot();
  const EdgeList read =
      ValueOrDie(ReadBinaryEdgeList(*device, dir.Sub("g.bin")));
  device->set_fault_injector(nullptr);

  EXPECT_EQ(read.edges(), list.edges());
  EXPECT_EQ(read.weights(), list.weights());
  EXPECT_EQ(injector.faults_injected(), 1u);
  EXPECT_GE((device->stats().Snapshot() - before).retries, 1u);
}

}  // namespace
}  // namespace graphsd
