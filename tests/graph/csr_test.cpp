#include "graph/csr.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace graphsd {
namespace {

TEST(CsrGraph, BuildsOutEdges) {
  EdgeList list(4);
  list.AddEdge(0, 1);
  list.AddEdge(0, 2);
  list.AddEdge(2, 3);
  const CsrGraph g = CsrGraph::Build(list);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 0u);
  auto n0 = g.Neighbors(0);
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(CsrGraph, BuildReverseIsTranspose) {
  EdgeList list(4);
  list.AddEdge(0, 2);
  list.AddEdge(1, 2);
  list.AddEdge(3, 2);
  const CsrGraph g = CsrGraph::BuildReverse(list);
  auto in2 = g.Neighbors(2);
  std::vector<VertexId> sources(in2.begin(), in2.end());
  std::sort(sources.begin(), sources.end());
  EXPECT_EQ(sources, (std::vector<VertexId>{0, 1, 3}));
  EXPECT_EQ(g.Degree(0), 0u);
}

TEST(CsrGraph, WeightsTravelWithEdges) {
  EdgeList list(3);
  list.AddEdge(0, 1, 10.0f);
  list.AddEdge(0, 2, 20.0f);
  list.AddEdge(1, 2, 30.0f);
  const CsrGraph g = CsrGraph::Build(list);
  ASSERT_TRUE(g.weighted());
  auto n = g.Neighbors(0);
  auto w = g.NeighborWeights(0);
  ASSERT_EQ(n.size(), 2u);
  for (std::size_t i = 0; i < n.size(); ++i) {
    if (n[i] == 1) {
      EXPECT_FLOAT_EQ(w[i], 10.0f);
    }
    if (n[i] == 2) {
      EXPECT_FLOAT_EQ(w[i], 20.0f);
    }
  }
}

TEST(CsrGraph, UnweightedGraphHasEmptyWeightSpans) {
  EdgeList list(2);
  list.AddEdge(0, 1);
  const CsrGraph g = CsrGraph::Build(list);
  EXPECT_FALSE(g.weighted());
  EXPECT_TRUE(g.NeighborWeights(0).empty());
}

TEST(CsrGraph, IsolatedVerticesHaveEmptyNeighborhoods) {
  EdgeList list(10);
  list.AddEdge(0, 9);
  const CsrGraph g = CsrGraph::Build(list);
  for (VertexId v = 1; v < 9; ++v) {
    EXPECT_TRUE(g.Neighbors(v).empty());
  }
}

TEST(CsrGraphProperty, DegreesSumToEdgeCount) {
  RmatOptions options;
  options.scale = 8;
  options.edge_factor = 4;
  const EdgeList list = GenerateRmat(options);
  const CsrGraph g = CsrGraph::Build(list);
  std::uint64_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) total += g.Degree(v);
  EXPECT_EQ(total, list.num_edges());
}

TEST(CsrGraphProperty, EveryEdgeAppearsExactlyOnce) {
  ErdosRenyiOptions options;
  options.num_vertices = 200;
  options.num_edges = 2000;
  const EdgeList list = GenerateErdosRenyi(options);
  const CsrGraph g = CsrGraph::Build(list);
  std::uint64_t found = 0;
  for (const Edge& e : list.edges()) {
    const auto n = g.Neighbors(e.src);
    found += std::count(n.begin(), n.end(), e.dst) > 0 ? 1 : 0;
  }
  EXPECT_EQ(found, list.num_edges());
  EXPECT_EQ(g.num_edges(), list.num_edges());
}

}  // namespace
}  // namespace graphsd
