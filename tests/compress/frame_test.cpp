// GSDF frame-format tests: header layout, the none-codec fallback for
// incompressible payloads, and the corruption surface — every damaged byte
// of a frame (truncation, magic, codec id, sizes, payload bits) must be
// rejected with kCorruptData before any decoded edge reaches the engine.
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "compress/frame.hpp"
#include "graph/types.hpp"
#include "testing_util.hpp"

namespace graphsd::compress {
namespace {

using testing::ValueOrDie;

std::vector<std::uint8_t> SortedPayload(std::uint32_t edges) {
  std::vector<std::uint8_t> raw;
  raw.reserve(edges * kEdgeBytes);
  for (std::uint32_t e = 0; e < edges; ++e) {
    const std::uint32_t src = 10 + e / 4;
    const std::uint32_t dst = 100 + 5 * (e % 4);
    raw.resize(raw.size() + kEdgeBytes);
    std::memcpy(raw.data() + raw.size() - kEdgeBytes, &src, 4);
    std::memcpy(raw.data() + raw.size() - 4, &dst, 4);
  }
  return raw;
}

TEST(Frame, RoundTripsCompressiblePayload) {
  const std::vector<std::uint8_t> raw = SortedPayload(64);
  const std::vector<std::uint8_t> frame =
      ValueOrDie(EncodeFrame(VarintDeltaCodec(), raw));
  ASSERT_GE(frame.size(), kFrameHeaderBytes);
  EXPECT_LT(frame.size(), kFrameHeaderBytes + raw.size());

  const FrameHeader header = ValueOrDie(ParseFrameHeader(frame));
  EXPECT_EQ(header.codec_id,
            static_cast<std::uint32_t>(CodecId::kVarintDelta));
  EXPECT_EQ(header.raw_bytes, raw.size());
  EXPECT_EQ(header.compressed_bytes, frame.size() - kFrameHeaderBytes);

  EXPECT_EQ(ValueOrDie(DecodeFrame(frame)), raw);

  std::vector<std::uint8_t> out(raw.size());
  ASSERT_OK(DecodeFrameInto(frame, out));
  EXPECT_EQ(out, raw);
}

TEST(Frame, IncompressiblePayloadFallsBackToNone) {
  // Alternating extreme ids defeat delta coding; the frame must fall back
  // to the none codec in the header and stay exactly raw + header bytes.
  std::vector<std::uint8_t> raw;
  for (int e = 0; e < 16; ++e) {
    const std::uint32_t src = e % 2 == 0 ? 0 : UINT32_MAX;
    const std::uint32_t dst = e % 2 == 0 ? UINT32_MAX : 0;
    raw.resize(raw.size() + kEdgeBytes);
    std::memcpy(raw.data() + raw.size() - kEdgeBytes, &src, 4);
    std::memcpy(raw.data() + raw.size() - 4, &dst, 4);
  }
  const std::vector<std::uint8_t> frame =
      ValueOrDie(EncodeFrame(VarintDeltaCodec(), raw));
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + raw.size());
  const FrameHeader header = ValueOrDie(ParseFrameHeader(frame));
  EXPECT_EQ(header.codec_id, static_cast<std::uint32_t>(CodecId::kNone));
  EXPECT_EQ(ValueOrDie(DecodeFrame(frame)), raw);
}

TEST(Frame, EmptyPayloadIsHeaderOnly) {
  const std::vector<std::uint8_t> frame =
      ValueOrDie(EncodeFrame(VarintDeltaCodec(), {}));
  EXPECT_EQ(frame.size(), kFrameHeaderBytes);
  const FrameHeader header = ValueOrDie(ParseFrameHeader(frame));
  EXPECT_EQ(header.raw_bytes, 0u);
  EXPECT_EQ(header.compressed_bytes, 0u);
  EXPECT_TRUE(ValueOrDie(DecodeFrame(frame)).empty());
}

TEST(Frame, RejectsShortHeader) {
  const std::vector<std::uint8_t> frame =
      ValueOrDie(EncodeFrame(VarintDeltaCodec(), SortedPayload(8)));
  for (std::size_t cut = 0; cut < kFrameHeaderBytes; ++cut) {
    const std::span<const std::uint8_t> head(frame.data(), cut);
    EXPECT_EQ(ParseFrameHeader(head).status().code(),
              StatusCode::kCorruptData)
        << "cut at " << cut;
  }
}

TEST(Frame, RejectsTruncatedPayload) {
  const std::vector<std::uint8_t> frame =
      ValueOrDie(EncodeFrame(VarintDeltaCodec(), SortedPayload(32)));
  const std::span<const std::uint8_t> head(frame.data(), frame.size() - 1);
  EXPECT_EQ(ParseFrameHeader(head).status().code(), StatusCode::kCorruptData);
  EXPECT_EQ(DecodeFrame(head).status().code(), StatusCode::kCorruptData);
}

TEST(Frame, RejectsBadMagic) {
  std::vector<std::uint8_t> frame =
      ValueOrDie(EncodeFrame(VarintDeltaCodec(), SortedPayload(8)));
  frame[0] ^= 0x01;
  EXPECT_EQ(ParseFrameHeader(frame).status().code(),
            StatusCode::kCorruptData);
}

TEST(Frame, RejectsUnknownCodecId) {
  std::vector<std::uint8_t> frame =
      ValueOrDie(EncodeFrame(VarintDeltaCodec(), SortedPayload(8)));
  frame[4] = 0x7;  // codec id little-endian low byte
  EXPECT_EQ(ParseFrameHeader(frame).status().code(),
            StatusCode::kCorruptData);
}

TEST(Frame, RejectsPayloadBitFlip) {
  std::vector<std::uint8_t> frame =
      ValueOrDie(EncodeFrame(VarintDeltaCodec(), SortedPayload(32)));
  ASSERT_GT(frame.size(), kFrameHeaderBytes);
  frame[kFrameHeaderBytes + frame.size() / 3] ^= 0x40;
  // The header still parses; the payload CRC catches the flip.
  EXPECT_OK(ParseFrameHeader(frame).status());
  EXPECT_EQ(DecodeFrame(frame).status().code(), StatusCode::kCorruptData);
}

TEST(Frame, RejectsRawSizeTamper) {
  const std::vector<std::uint8_t> raw = SortedPayload(16);
  std::vector<std::uint8_t> frame =
      ValueOrDie(EncodeFrame(VarintDeltaCodec(), raw));
  frame[8] ^= 0x08;  // raw_bytes little-endian low byte
  // DecodeFrame sizes output from the tampered header; the codec then
  // refuses to produce a different byte count than the stream encodes.
  EXPECT_EQ(DecodeFrame(frame).status().code(), StatusCode::kCorruptData);
  // DecodeFrameInto with the true size disagrees with the header.
  std::vector<std::uint8_t> out(raw.size());
  EXPECT_EQ(DecodeFrameInto(frame, out).code(), StatusCode::kCorruptData);
}

TEST(Frame, DecodeIntoRejectsWrongOutputSize) {
  const std::vector<std::uint8_t> raw = SortedPayload(16);
  const std::vector<std::uint8_t> frame =
      ValueOrDie(EncodeFrame(VarintDeltaCodec(), raw));
  std::vector<std::uint8_t> small(raw.size() - kEdgeBytes);
  EXPECT_EQ(DecodeFrameInto(frame, small).code(), StatusCode::kCorruptData);
  std::vector<std::uint8_t> big(raw.size() + kEdgeBytes);
  EXPECT_EQ(DecodeFrameInto(frame, big).code(), StatusCode::kCorruptData);
}

TEST(Frame, NoneCodecFrameRoundTrips) {
  const std::vector<std::uint8_t> raw = SortedPayload(8);
  const std::vector<std::uint8_t> frame =
      ValueOrDie(EncodeFrame(NoneCodec(), raw));
  EXPECT_EQ(frame.size(), kFrameHeaderBytes + raw.size());
  const FrameHeader header = ValueOrDie(ParseFrameHeader(frame));
  EXPECT_EQ(header.codec_id, static_cast<std::uint32_t>(CodecId::kNone));
  EXPECT_EQ(ValueOrDie(DecodeFrame(frame)), raw);
}

}  // namespace
}  // namespace graphsd::compress
