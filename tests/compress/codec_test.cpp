// Edge-payload codec unit tests: round-trips over the payload shapes the
// grid produces (empty, single-edge, sorted, duplicates, extreme ids) and
// strict rejection of malformed streams — the codec is the last line of
// defence behind the frame CRC, so every truncation/overflow path must
// surface as kCorruptData rather than garbage edges.
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "compress/codec.hpp"
#include "graph/types.hpp"
#include "testing_util.hpp"

namespace graphsd::compress {
namespace {

using testing::ValueOrDie;

std::vector<std::uint8_t> PayloadOf(const std::vector<Edge>& edges) {
  std::vector<std::uint8_t> raw(edges.size() * kEdgeBytes);
  if (!raw.empty()) std::memcpy(raw.data(), edges.data(), raw.size());
  return raw;
}

std::vector<std::uint8_t> EncodeOrDie(const Codec& codec,
                                      const std::vector<std::uint8_t>& raw) {
  std::vector<std::uint8_t> out(codec.MaxCompressedSize(raw.size()));
  const std::size_t n = ValueOrDie(
      codec.Encode(raw, std::span<std::uint8_t>(out)));
  EXPECT_LE(n, out.size());
  out.resize(n);
  return out;
}

void ExpectRoundTrip(const Codec& codec, const std::vector<Edge>& edges) {
  const std::vector<std::uint8_t> raw = PayloadOf(edges);
  const std::vector<std::uint8_t> encoded = EncodeOrDie(codec, raw);
  std::vector<std::uint8_t> decoded(raw.size());
  ASSERT_OK(codec.Decode(encoded, decoded));
  EXPECT_EQ(decoded, raw);
}

TEST(CodecRegistry, FindByNameAndId) {
  ASSERT_NE(FindCodec("none"), nullptr);
  EXPECT_EQ(FindCodec("none")->id(), CodecId::kNone);
  ASSERT_NE(FindCodec("varint-delta"), nullptr);
  EXPECT_EQ(FindCodec("varint-delta")->id(), CodecId::kVarintDelta);
  EXPECT_EQ(FindCodec("zstd"), nullptr);
  EXPECT_EQ(FindCodec(""), nullptr);

  EXPECT_EQ(FindCodecById(0), &NoneCodec());
  EXPECT_EQ(FindCodecById(1), &VarintDeltaCodec());
  EXPECT_EQ(FindCodecById(2), nullptr);
  EXPECT_EQ(FindCodecById(UINT32_MAX), nullptr);
}

TEST(NoneCodec, RoundTripsVerbatim) {
  const Codec& codec = NoneCodec();
  EXPECT_EQ(codec.name(), "none");
  ExpectRoundTrip(codec, {});
  ExpectRoundTrip(codec, {{3, 7}});
  ExpectRoundTrip(codec, {{0, 1}, {0, 2}, {5, 0}});
  const std::vector<std::uint8_t> raw = PayloadOf({{1, 2}, {3, 4}});
  EXPECT_EQ(EncodeOrDie(codec, raw), raw);
}

TEST(NoneCodec, DecodeRejectsSizeMismatch) {
  std::vector<std::uint8_t> encoded(16);
  std::vector<std::uint8_t> out(8);
  EXPECT_EQ(NoneCodec().Decode(encoded, out).code(),
            StatusCode::kCorruptData);
}

TEST(VarintDelta, RoundTripsEmptyPayload) {
  const std::vector<std::uint8_t> encoded =
      EncodeOrDie(VarintDeltaCodec(), {});
  EXPECT_TRUE(encoded.empty());
  std::vector<std::uint8_t> out;
  EXPECT_OK(VarintDeltaCodec().Decode(encoded, out));
}

TEST(VarintDelta, RoundTripsSingleEdge) {
  ExpectRoundTrip(VarintDeltaCodec(), {{0, 0}});
  ExpectRoundTrip(VarintDeltaCodec(), {{123456, 654321}});
  ExpectRoundTrip(VarintDeltaCodec(), {{UINT32_MAX, UINT32_MAX}});
}

TEST(VarintDelta, RoundTripsDuplicateEdges) {
  // Duplicate (src,dst) pairs produce zero deltas: one byte each.
  const std::vector<Edge> edges(17, Edge{42, 99});
  ExpectRoundTrip(VarintDeltaCodec(), edges);
  const std::vector<std::uint8_t> encoded =
      EncodeOrDie(VarintDeltaCodec(), PayloadOf(edges));
  // First edge pays for the absolute values, the 16 duplicates are 2 bytes.
  EXPECT_EQ(encoded.size(), 2u + 1u + 16u * 2u);
}

TEST(VarintDelta, RoundTripsMaxVertexIdSwings) {
  // Worst-case deltas: 0 <-> UINT32_MAX swings in both columns. Each delta
  // zigzags to just under 2^33, the 5-byte varint ceiling.
  ExpectRoundTrip(VarintDeltaCodec(), {{0, UINT32_MAX},
                                       {UINT32_MAX, 0},
                                       {0, UINT32_MAX},
                                       {UINT32_MAX, UINT32_MAX},
                                       {0, 0}});
}

TEST(VarintDelta, RoundTripsUnsortedPayload) {
  // The codec exploits sorted order but must round-trip any edge array.
  ExpectRoundTrip(VarintDeltaCodec(), {{900, 3},
                                       {2, 900000},
                                       {2, 2},
                                       {UINT32_MAX, 17},
                                       {5, UINT32_MAX - 1}});
}

TEST(VarintDelta, SortedPayloadCompresses) {
  // A (src,dst)-sorted run with small gaps — the shape grid sub-blocks
  // have — must come out well under the raw 8 bytes/edge.
  std::vector<Edge> edges;
  for (std::uint32_t s = 0; s < 64; ++s) {
    for (std::uint32_t d = 0; d < 8; ++d) {
      edges.push_back({1000 + s, 2000 + 3 * d});
    }
  }
  const std::vector<std::uint8_t> raw = PayloadOf(edges);
  const std::vector<std::uint8_t> encoded =
      EncodeOrDie(VarintDeltaCodec(), raw);
  EXPECT_LT(encoded.size() * 2, raw.size());  // at least 2x on this shape
}

TEST(VarintDelta, EncodeRejectsPartialEdge) {
  std::vector<std::uint8_t> raw(kEdgeBytes + 3);
  std::vector<std::uint8_t> out(64);
  EXPECT_EQ(VarintDeltaCodec()
                .Encode(raw, std::span<std::uint8_t>(out))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(VarintDelta, DecodeRejectsTruncatedStream) {
  const std::vector<std::uint8_t> encoded =
      EncodeOrDie(VarintDeltaCodec(), PayloadOf({{7, 9}, {8, 11}}));
  std::vector<std::uint8_t> out(2 * kEdgeBytes);
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    const std::span<const std::uint8_t> head(encoded.data(), cut);
    EXPECT_EQ(VarintDeltaCodec().Decode(head, out).code(),
              StatusCode::kCorruptData)
        << "cut at " << cut;
  }
}

TEST(VarintDelta, DecodeRejectsTrailingBytes) {
  std::vector<std::uint8_t> encoded =
      EncodeOrDie(VarintDeltaCodec(), PayloadOf({{7, 9}}));
  encoded.push_back(0x00);
  std::vector<std::uint8_t> out(kEdgeBytes);
  EXPECT_EQ(VarintDeltaCodec().Decode(encoded, out).code(),
            StatusCode::kCorruptData);
}

TEST(VarintDelta, DecodeRejectsOverlongVarint) {
  // Six continuation bytes exceed the 5-byte ceiling for a 33-bit zigzag.
  const std::vector<std::uint8_t> encoded = {0x80, 0x80, 0x80, 0x80,
                                             0x80, 0x01, 0x00};
  std::vector<std::uint8_t> out(kEdgeBytes);
  EXPECT_EQ(VarintDeltaCodec().Decode(encoded, out).code(),
            StatusCode::kCorruptData);
}

TEST(VarintDelta, DecodeRejectsNegativeFirstId) {
  // zigzag(1) = -1: src would step below 0 from the implicit origin.
  const std::vector<std::uint8_t> encoded = {0x01, 0x00};
  std::vector<std::uint8_t> out(kEdgeBytes);
  EXPECT_EQ(VarintDeltaCodec().Decode(encoded, out).code(),
            StatusCode::kCorruptData);
}

TEST(VarintDelta, DecodeRejectsDeltaAboveIdRange) {
  // zigzag value 2^33 decodes to delta +2^32: one past the largest step a
  // 32-bit vertex id can take from the implicit origin 0.
  const std::vector<std::uint8_t> encoded = {0x80, 0x80, 0x80, 0x80,
                                             0x20, 0x00};
  std::vector<std::uint8_t> out(kEdgeBytes);
  EXPECT_EQ(VarintDeltaCodec().Decode(encoded, out).code(),
            StatusCode::kCorruptData);
}

TEST(VarintDelta, DecodeRejectsRaggedOutputSize) {
  const std::vector<std::uint8_t> encoded =
      EncodeOrDie(VarintDeltaCodec(), PayloadOf({{7, 9}}));
  std::vector<std::uint8_t> out(kEdgeBytes + 1);
  EXPECT_EQ(VarintDeltaCodec().Decode(encoded, out).code(),
            StatusCode::kCorruptData);
}

TEST(VarintDelta, MaxCompressedSizeBoundsWorstCase) {
  // The 0 <-> UINT32_MAX swing payload is the documented worst case; its
  // encoding must respect MaxCompressedSize.
  std::vector<Edge> edges;
  for (int i = 0; i < 32; ++i) {
    edges.push_back(i % 2 == 0 ? Edge{0, UINT32_MAX} : Edge{UINT32_MAX, 0});
  }
  const std::vector<std::uint8_t> raw = PayloadOf(edges);
  const std::vector<std::uint8_t> encoded =
      EncodeOrDie(VarintDeltaCodec(), raw);
  EXPECT_LE(encoded.size(), VarintDeltaCodec().MaxCompressedSize(raw.size()));
}

}  // namespace
}  // namespace graphsd::compress
