#include "partition/grid_builder.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/grid_dataset.hpp"
#include "testing_util.hpp"
#include "util/rng.hpp"

namespace graphsd::partition {
namespace {

using graphsd::testing::BuildTestGrid;
using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

TEST(GridBuilder, ManifestDescribesTheGraph) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  RmatOptions options;
  options.scale = 7;
  options.edge_factor = 4;
  const EdgeList g = GenerateRmat(options);
  const GridManifest m = BuildTestGrid(g, *device, dir.Sub("ds"), 4);
  EXPECT_EQ(m.num_vertices, g.num_vertices());
  EXPECT_EQ(m.num_edges, g.num_edges());
  EXPECT_EQ(m.p, 4u);
  EXPECT_TRUE(m.sorted);
  EXPECT_TRUE(m.has_index);
  EXPECT_OK(m.Validate());
}

// Partitioning invariant: every edge lands in exactly the sub-block its
// endpoints' intervals dictate, and nothing is lost or duplicated.
TEST(GridBuilder, EveryEdgeInExactlyItsSubBlock) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  ErdosRenyiOptions options;
  options.num_vertices = 300;
  options.num_edges = 3000;
  const EdgeList g = GenerateErdosRenyi(options);
  const GridManifest m = BuildTestGrid(g, *device, dir.Sub("ds"), 5);
  const GridDataset dataset =
      ValueOrDie(GridDataset::Open(*device, dir.Sub("ds")));

  std::vector<Edge> recovered;
  for (std::uint32_t i = 0; i < m.p; ++i) {
    for (std::uint32_t j = 0; j < m.p; ++j) {
      const SubBlock block =
          ValueOrDie(dataset.LoadSubBlock(i, j, /*load_weights=*/false));
      for (const Edge& e : block.edges) {
        EXPECT_EQ(IntervalOf(m.boundaries, e.src), i);
        EXPECT_EQ(IntervalOf(m.boundaries, e.dst), j);
      }
      recovered.insert(recovered.end(), block.edges.begin(),
                       block.edges.end());
    }
  }
  auto expected = g.edges();
  std::sort(expected.begin(), expected.end());
  std::sort(recovered.begin(), recovered.end());
  EXPECT_EQ(recovered, expected);
}

TEST(GridBuilder, SubBlocksAreSorted) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  RmatOptions options;
  options.scale = 7;
  const EdgeList g = GenerateRmat(options);
  const GridManifest m = BuildTestGrid(g, *device, dir.Sub("ds"), 3);
  const GridDataset dataset =
      ValueOrDie(GridDataset::Open(*device, dir.Sub("ds")));
  for (std::uint32_t i = 0; i < m.p; ++i) {
    for (std::uint32_t j = 0; j < m.p; ++j) {
      const SubBlock block = ValueOrDie(dataset.LoadSubBlock(i, j, false));
      EXPECT_TRUE(std::is_sorted(block.edges.begin(), block.edges.end()));
    }
  }
}

TEST(GridBuilder, IndexLocatesEveryVertexEdgeRange) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  ErdosRenyiOptions options;
  options.num_vertices = 120;
  options.num_edges = 1500;
  const EdgeList g = GenerateErdosRenyi(options);
  const GridManifest m = BuildTestGrid(g, *device, dir.Sub("ds"), 4);
  const GridDataset dataset =
      ValueOrDie(GridDataset::Open(*device, dir.Sub("ds")));

  for (std::uint32_t i = 0; i < m.p; ++i) {
    for (std::uint32_t j = 0; j < m.p; ++j) {
      const SubBlock block = ValueOrDie(dataset.LoadSubBlock(i, j, false));
      const auto index = ValueOrDie(dataset.LoadIndex(i, j));
      ASSERT_EQ(index.size(), m.IntervalSize(i) + 1);
      EXPECT_EQ(index.front(), 0u);
      EXPECT_EQ(index.back(), block.edges.size());
      const VertexId begin = m.boundaries[i];
      for (VertexId local = 0; local < m.IntervalSize(i); ++local) {
        for (std::uint32_t k = index[local]; k < index[local + 1]; ++k) {
          EXPECT_EQ(block.edges[k].src, begin + local);
        }
      }
    }
  }
}

TEST(GridBuilder, WeightsFollowEdgesThroughPartitioning) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  // Weight = src*1000 + dst lets us verify pairing after the shuffle.
  EdgeList g(50);
  Xoshiro256 rng(3);
  for (int k = 0; k < 400; ++k) {
    const auto s = static_cast<VertexId>(rng.NextBounded(50));
    const auto d = static_cast<VertexId>(rng.NextBounded(50));
    g.AddEdge(s, d, static_cast<Weight>(s * 1000 + d));
  }
  const GridManifest m = BuildTestGrid(g, *device, dir.Sub("ds"), 3);
  const GridDataset dataset =
      ValueOrDie(GridDataset::Open(*device, dir.Sub("ds")));
  for (std::uint32_t i = 0; i < m.p; ++i) {
    for (std::uint32_t j = 0; j < m.p; ++j) {
      const SubBlock block = ValueOrDie(dataset.LoadSubBlock(i, j, true));
      ASSERT_EQ(block.weights.size(), block.edges.size());
      for (std::size_t k = 0; k < block.edges.size(); ++k) {
        EXPECT_FLOAT_EQ(block.weights[k],
                        block.edges[k].src * 1000.0f + block.edges[k].dst);
      }
    }
  }
}

TEST(GridBuilder, AutoChoosesIntervalCountFromBudget) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  RmatOptions options;
  options.scale = 10;
  options.edge_factor = 8;
  const EdgeList g = GenerateRmat(options);
  GridBuildOptions build;
  build.num_intervals = 0;
  build.memory_budget_bytes = g.RawBytes() / 10;
  const GridManifest m =
      ValueOrDie(BuildGrid(g, *device, dir.Sub("ds"), build));
  EXPECT_GT(m.p, 1u);
}

TEST(GridBuilder, UnsortedNoIndexLayout) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  const EdgeList g = GenerateRing(64);
  GridBuildOptions build;
  build.num_intervals = 2;
  build.sort_sub_blocks = false;
  build.build_index = false;
  const GridManifest m =
      ValueOrDie(BuildGrid(g, *device, dir.Sub("ds"), build));
  EXPECT_FALSE(m.sorted);
  EXPECT_FALSE(m.has_index);
  const GridDataset dataset =
      ValueOrDie(GridDataset::Open(*device, dir.Sub("ds")));
  EXPECT_FALSE(dataset.LoadIndex(0, 0).ok());
}

TEST(GridBuilder, IndexWithoutSortIsRejected) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  const EdgeList g = GenerateRing(8);
  GridBuildOptions build;
  build.sort_sub_blocks = false;
  build.build_index = true;
  EXPECT_FALSE(BuildGrid(g, *device, dir.Sub("ds"), build).ok());
}

TEST(GridBuilder, EmptyGraphIsRejected) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  EdgeList g;
  EXPECT_FALSE(BuildGrid(g, *device, dir.Sub("ds"), {}).ok());
}

TEST(GridBuilder, NegativeWeightGraphIsRejected) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  EdgeList g(3);
  g.AddEdge(0, 1, 1.0f);
  g.AddEdge(1, 2, -3.0f);
  const auto result = BuildGrid(g, *device, dir.Sub("ds"), {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GridBuilder, RebuildOverwritesPreviousDataset) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  const EdgeList big = GenerateRing(100);
  BuildTestGrid(big, *device, dir.Sub("ds"), 4);
  const EdgeList small = GenerateRing(10);
  const GridManifest m = BuildTestGrid(small, *device, dir.Sub("ds"), 2);
  const GridDataset dataset =
      ValueOrDie(GridDataset::Open(*device, dir.Sub("ds")));
  EXPECT_EQ(dataset.num_vertices(), 10u);
  EXPECT_EQ(dataset.p(), 2u);
  // Stale sb_3_3 files from the old P=4 layout must be gone.
  EXPECT_FALSE(io::PathExists(SubBlockEdgesPath(dir.Sub("ds"), 3, 3)));
  (void)m;
}

TEST(GridBuilder, DegreeFileMatchesGraph) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  const EdgeList g = GenerateStar(20);
  BuildTestGrid(g, *device, dir.Sub("ds"), 2);
  const GridDataset dataset =
      ValueOrDie(GridDataset::Open(*device, dir.Sub("ds")));
  EXPECT_EQ(dataset.out_degrees(), g.OutDegrees());
}

}  // namespace
}  // namespace graphsd::partition
