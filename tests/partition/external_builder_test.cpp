// The out-of-core builder must produce a dataset byte-equivalent to the
// in-memory builder's under bounded memory.
#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "algos/sssp.hpp"
#include "core/engine.hpp"
#include "graph/edge_io.hpp"
#include "io/file.hpp"
#include "graph/reference_algorithms.hpp"
#include "graph/generators.hpp"
#include "partition/external_builder.hpp"
#include "partition/grid_dataset.hpp"
#include "testing_util.hpp"

namespace graphsd::partition {
namespace {

using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

class ExternalBuilderTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    device_ = io::MakePosixDevice();
    RmatOptions options;
    options.scale = 8;
    options.edge_factor = 6;
    if (GetParam()) options.max_weight = 10.0;  // weighted variant
    graph_ = GenerateRmat(options);
    raw_path_ = dir_.Sub("raw.bin");
    ASSERT_OK(WriteBinaryEdgeList(graph_, *device_, raw_path_));
  }

  TempDir dir_;
  std::unique_ptr<io::Device> device_;
  EdgeList graph_;
  std::string raw_path_;
};

TEST_P(ExternalBuilderTest, MatchesInMemoryBuilderExactly) {
  // In-memory reference dataset.
  GridBuildOptions in_memory;
  in_memory.num_intervals = 4;
  in_memory.name = "g";
  (void)ValueOrDie(BuildGrid(graph_, *device_, dir_.Sub("mem"), in_memory));

  // Externally built dataset with aggressively small buffers to force many
  // spill flushes and input chunks.
  ExternalBuildOptions external;
  external.num_intervals = 4;
  external.name = "g";
  external.spill_buffer_bytes = 128;   // ~10 edges per flush
  external.input_chunk_edges = 97;     // non-round chunking
  const GridManifest manifest = ValueOrDie(
      BuildGridExternal(raw_path_, *device_, dir_.Sub("ext"), external));

  const GridDataset mem_ds =
      ValueOrDie(GridDataset::Open(*device_, dir_.Sub("mem")));
  const GridDataset ext_ds =
      ValueOrDie(GridDataset::Open(*device_, dir_.Sub("ext")));

  EXPECT_EQ(ext_ds.manifest().Serialize(), mem_ds.manifest().Serialize());
  EXPECT_EQ(ext_ds.out_degrees(), mem_ds.out_degrees());
  for (std::uint32_t i = 0; i < manifest.p; ++i) {
    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      const SubBlock a = ValueOrDie(ext_ds.LoadSubBlock(i, j, true));
      const SubBlock b = ValueOrDie(mem_ds.LoadSubBlock(i, j, true));
      EXPECT_EQ(a.edges, b.edges) << "sub-block " << i << "," << j;
      EXPECT_EQ(a.weights, b.weights) << "sub-block " << i << "," << j;
      if (manifest.has_index) {
        EXPECT_EQ(ValueOrDie(ext_ds.LoadIndex(i, j)),
                  ValueOrDie(mem_ds.LoadIndex(i, j)));
      }
    }
  }
}

TEST_P(ExternalBuilderTest, SpillFilesAreCleanedUp) {
  ExternalBuildOptions external;
  external.num_intervals = 3;
  (void)ValueOrDie(
      BuildGridExternal(raw_path_, *device_, dir_.Sub("ext"), external));
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      EXPECT_FALSE(io::PathExists(dir_.Sub("ext") + "/spill_" +
                                  std::to_string(i) + "_" +
                                  std::to_string(j) + ".edges"));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WeightedAndNot, ExternalBuilderTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "weighted" : "unweighted";
                         });

TEST(ExternalBuilder, MissingInputFails) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  EXPECT_FALSE(
      BuildGridExternal(dir.Sub("missing.bin"), *device, dir.Sub("out"), {})
          .ok());
}

TEST(ExternalBuilder, CorruptInputFails) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  ASSERT_OK(io::WriteStringToFile(dir.Sub("bad.bin"), std::string(64, 'z')));
  const auto result =
      BuildGridExternal(dir.Sub("bad.bin"), *device, dir.Sub("out"), {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptData);
}

// Weight validation at load: the raw file passed the writer's checks, then
// a weight was corrupted on disk. The builder must reject it before
// committing any dataset bytes, with the same contract as
// EdgeList::Validate (finite, nonnegative).
TEST(ExternalBuilder, CorruptedWeightOnDiskIsRejected) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  EdgeList g(3);
  g.AddEdge(0, 1, 1.0f);
  g.AddEdge(1, 2, 2.0f);
  g.AddEdge(2, 0, 3.0f);
  const std::string raw = dir.Sub("raw.bin");
  ASSERT_OK(graphsd::WriteBinaryEdgeList(g, *device, raw));

  // Weights are the trailing num_edges * sizeof(Weight) bytes; overwrite
  // the last one with -1.0f.
  std::string bytes = ValueOrDie(io::ReadFileToString(raw));
  const float negative = -1.0f;
  std::memcpy(bytes.data() + bytes.size() - sizeof(float), &negative,
              sizeof(float));
  ASSERT_OK(io::WriteStringToFile(raw, bytes));

  ExternalBuildOptions external;
  external.num_intervals = 2;
  const auto result =
      BuildGridExternal(raw, *device, dir.Sub("out"), external);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().ToString().find("negative"), std::string::npos);
}

TEST(ExternalBuilder, AutoChoosesIntervalCount) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  RmatOptions options;
  options.scale = 10;
  options.edge_factor = 8;
  const EdgeList g = GenerateRmat(options);
  ASSERT_OK(WriteBinaryEdgeList(g, *device, dir.Sub("raw.bin")));
  ExternalBuildOptions external;
  external.memory_budget_bytes = g.RawBytes() / 10;
  const auto manifest = ValueOrDie(
      BuildGridExternal(dir.Sub("raw.bin"), *device, dir.Sub("out"), external));
  EXPECT_GT(manifest.p, 1u);
}

// The engine runs unchanged on an externally built dataset.
TEST(ExternalBuilder, EngineRunsOnExternalDataset) {
  TempDir dir;
  auto device = io::MakeSimulatedDevice(io::IoCostModel::ScaledHdd());
  RmatOptions options;
  options.scale = 8;
  options.max_weight = 5.0;
  const EdgeList g = GenerateRmat(options);
  ASSERT_OK(WriteBinaryEdgeList(g, *device, dir.Sub("raw.bin")));
  ExternalBuildOptions external;
  external.num_intervals = 4;
  (void)ValueOrDie(
      BuildGridExternal(dir.Sub("raw.bin"), *device, dir.Sub("ds"), external));
  const auto ds = ValueOrDie(GridDataset::Open(*device, dir.Sub("ds")));

  const auto reference = ReferenceSssp(g, 0);
  core::GraphSDEngine engine(ds, {});
  algos::Sssp sssp(0);
  (void)ValueOrDie(engine.Run(sssp));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double got = sssp.ValueOf(*engine.state(), v);
    if (std::isinf(reference[v])) {
      EXPECT_TRUE(std::isinf(got));
    } else {
      EXPECT_NEAR(got, reference[v], 1e-9);
    }
  }
}

}  // namespace
}  // namespace graphsd::partition
