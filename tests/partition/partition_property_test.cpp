// Property sweep over the 2-D partitioner: the structural invariants of
// the paper's §3.2 representation must hold for every graph family ×
// interval scheme × interval count × weightedness.
#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/grid_dataset.hpp"
#include "testing_util.hpp"

namespace graphsd::partition {
namespace {

using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

struct FamilyCase {
  const char* name;
  EdgeList (*make)(bool weighted);
};

EdgeList MakeRmat(bool weighted) {
  RmatOptions o;
  o.scale = 7;
  o.edge_factor = 5;
  o.max_weight = weighted ? 9.0 : 0.0;
  return GenerateRmat(o);
}
EdgeList MakeWeb(bool weighted) {
  WebGraphOptions o;
  o.num_vertices = 256;
  o.avg_degree = 6;
  o.whisker_fraction = 0.2;
  o.whisker_length = 8;
  o.max_weight = weighted ? 9.0 : 0.0;
  return GenerateWebGraph(o);
}
EdgeList MakeStarCase(bool weighted) {
  return GenerateStar(200, weighted ? 2.0 : 0.0);
}
EdgeList MakePathCase(bool weighted) {
  return GeneratePath(150, weighted ? 1.0 : 0.0);
}

const FamilyCase kFamilies[] = {
    {"rmat", MakeRmat},
    {"web", MakeWeb},
    {"star", MakeStarCase},
    {"path", MakePathCase},
};

using Param = std::tuple<int, std::uint32_t, int, bool>;  // family, P, scheme, weighted

class PartitionProperty : public ::testing::TestWithParam<Param> {};

TEST_P(PartitionProperty, AllInvariantsHold) {
  const auto [family_index, p, scheme_index, weighted] = GetParam();
  const FamilyCase& family = kFamilies[family_index];
  const EdgeList graph = family.make(weighted);

  TempDir dir;
  auto device = io::MakePosixDevice();
  GridBuildOptions build;
  build.num_intervals = p;
  build.scheme = scheme_index == 0 ? IntervalScheme::kEqualVertices
                                   : IntervalScheme::kBalancedEdges;
  const GridManifest manifest =
      ValueOrDie(BuildGrid(graph, *device, dir.Sub("ds"), build));
  const GridDataset dataset =
      ValueOrDie(GridDataset::Open(*device, dir.Sub("ds")));

  // Invariant 1: the manifest validates and matches the graph.
  ASSERT_OK(manifest.Validate());
  EXPECT_EQ(manifest.num_vertices, graph.num_vertices());
  EXPECT_EQ(manifest.num_edges, graph.num_edges());
  EXPECT_EQ(manifest.weighted, weighted);

  // Invariant 2: degrees file is the graph's out-degrees.
  EXPECT_EQ(dataset.out_degrees(), graph.OutDegrees());

  // Invariant 3: every edge lands in exactly the sub-block its endpoint
  // intervals dictate; nothing lost, nothing duplicated, weights attached.
  std::vector<Edge> recovered;
  std::vector<std::pair<Edge, Weight>> recovered_weighted;
  for (std::uint32_t i = 0; i < manifest.p; ++i) {
    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      const SubBlock block =
          ValueOrDie(dataset.LoadSubBlock(i, j, weighted));
      ASSERT_EQ(block.edges.size(), manifest.EdgesIn(i, j));
      // Invariant 4: sorted by (src, dst).
      EXPECT_TRUE(std::is_sorted(block.edges.begin(), block.edges.end()));
      for (std::size_t k = 0; k < block.edges.size(); ++k) {
        const Edge& e = block.edges[k];
        EXPECT_EQ(IntervalOf(manifest.boundaries, e.src), i);
        EXPECT_EQ(IntervalOf(manifest.boundaries, e.dst), j);
        recovered.push_back(e);
        if (weighted) recovered_weighted.emplace_back(e, block.weights[k]);
      }
      // Invariant 5: the index reconstructs per-vertex ranges exactly.
      const auto index = ValueOrDie(dataset.LoadIndex(i, j));
      ASSERT_EQ(index.size(), manifest.IntervalSize(i) + 1);
      EXPECT_EQ(index.front(), 0u);
      EXPECT_EQ(index.back(), block.edges.size());
      for (VertexId local = 0; local + 1 < index.size(); ++local) {
        ASSERT_LE(index[local], index[local + 1]);
        for (std::uint32_t k = index[local]; k < index[local + 1]; ++k) {
          EXPECT_EQ(block.edges[k].src, manifest.boundaries[i] + local);
        }
      }
    }
  }
  auto expected = graph.edges();
  std::sort(expected.begin(), expected.end());
  std::sort(recovered.begin(), recovered.end());
  EXPECT_EQ(recovered, expected);

  // Invariant 6: weights still pair with their edges. Build the expected
  // multiset from the input.
  if (weighted) {
    std::vector<std::pair<Edge, Weight>> expected_weighted;
    for (std::uint64_t k = 0; k < graph.num_edges(); ++k) {
      expected_weighted.emplace_back(graph.edges()[k], graph.weights()[k]);
    }
    auto by_edge_then_weight = [](const std::pair<Edge, Weight>& a,
                                  const std::pair<Edge, Weight>& b) {
      if (a.first == b.first) return a.second < b.second;
      return a.first < b.first;
    };
    std::sort(expected_weighted.begin(), expected_weighted.end(),
              by_edge_then_weight);
    std::sort(recovered_weighted.begin(), recovered_weighted.end(),
              by_edge_then_weight);
    EXPECT_EQ(recovered_weighted, expected_weighted);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    ::testing::Combine(::testing::Range(0, 4),            // family
                       ::testing::Values(1u, 3u, 7u),     // P
                       ::testing::Values(0, 1),           // scheme
                       ::testing::Bool()),                // weighted
    [](const ::testing::TestParamInfo<Param>& info) {
      // No structured bindings here: commas inside [] are not protected
      // from the INSTANTIATE macro's argument splitting.
      return std::string(kFamilies[std::get<0>(info.param)].name) + "_p" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == 0 ? "_equal" : "_balanced") +
             (std::get<3>(info.param) ? "_weighted" : "_plain");
    });

}  // namespace
}  // namespace graphsd::partition
