#include "partition/manifest.hpp"

#include <gtest/gtest.h>

#include "testing_util.hpp"

namespace graphsd::partition {
namespace {

using testing::ValueOrDie;

GridManifest MakeManifest() {
  GridManifest m;
  m.name = "toy";
  m.num_vertices = 10;
  m.num_edges = 6;
  m.weighted = true;
  m.sorted = true;
  m.has_index = true;
  m.p = 2;
  m.boundaries = {0, 5, 10};
  m.sub_block_edges = {1, 2, 3, 0};
  return m;
}

TEST(GridManifest, ValidatesGoodManifest) {
  EXPECT_OK(MakeManifest().Validate());
}

TEST(GridManifest, SerializeParseRoundTrip) {
  const GridManifest m = MakeManifest();
  const GridManifest parsed = ValueOrDie(GridManifest::Parse(m.Serialize()));
  EXPECT_EQ(parsed.name, "toy");
  EXPECT_EQ(parsed.num_vertices, 10u);
  EXPECT_EQ(parsed.num_edges, 6u);
  EXPECT_TRUE(parsed.weighted);
  EXPECT_TRUE(parsed.sorted);
  EXPECT_TRUE(parsed.has_index);
  EXPECT_EQ(parsed.p, 2u);
  EXPECT_EQ(parsed.boundaries, m.boundaries);
  EXPECT_EQ(parsed.sub_block_edges, m.sub_block_edges);
}

TEST(GridManifest, AccessorsMatchLayout) {
  const GridManifest m = MakeManifest();
  EXPECT_EQ(m.EdgesIn(0, 0), 1u);
  EXPECT_EQ(m.EdgesIn(0, 1), 2u);
  EXPECT_EQ(m.EdgesIn(1, 0), 3u);
  EXPECT_EQ(m.EdgesIn(1, 1), 0u);
  EXPECT_EQ(m.IntervalSize(0), 5u);
  EXPECT_EQ(m.IntervalSize(1), 5u);
  EXPECT_EQ(m.BytesPerEdge(), kEdgeBytes + kWeightBytes);
  EXPECT_EQ(m.TotalEdgeBytes(), 6 * (kEdgeBytes + kWeightBytes));
}

TEST(GridManifest, RejectsWrongHeader) {
  EXPECT_FALSE(GridManifest::Parse("not a manifest\n").ok());
}

TEST(GridManifest, RejectsEdgeSumMismatch) {
  GridManifest m = MakeManifest();
  m.sub_block_edges = {1, 1, 1, 1};  // sums to 4, not 6
  EXPECT_FALSE(m.Validate().ok());
  EXPECT_FALSE(GridManifest::Parse(m.Serialize()).ok());
}

TEST(GridManifest, RejectsEmptyInterval) {
  GridManifest m = MakeManifest();
  m.boundaries = {0, 5, 5};  // second interval empty... and wrong end
  EXPECT_FALSE(m.Validate().ok());
}

TEST(GridManifest, RejectsBoundariesNotSpanningVertexSet) {
  GridManifest m = MakeManifest();
  m.boundaries = {0, 5, 9};
  EXPECT_FALSE(m.Validate().ok());
}

TEST(GridManifest, RejectsUnknownKey) {
  std::string text = MakeManifest().Serialize();
  text += "mystery=1\n";
  EXPECT_FALSE(GridManifest::Parse(text).ok());
}

TEST(ManifestPaths, StableNames) {
  EXPECT_EQ(ManifestPath("/d"), "/d/manifest.txt");
  EXPECT_EQ(DegreesPath("/d"), "/d/degrees.bin");
  EXPECT_EQ(SubBlockEdgesPath("/d", 1, 2), "/d/sb_1_2.edges");
  EXPECT_EQ(SubBlockWeightsPath("/d", 1, 2), "/d/sb_1_2.weights");
  EXPECT_EQ(SubBlockIndexPath("/d", 1, 2), "/d/sb_1_2.index");
}

}  // namespace
}  // namespace graphsd::partition
