#include "partition/manifest.hpp"

#include <gtest/gtest.h>

#include "testing_util.hpp"

namespace graphsd::partition {
namespace {

using testing::ValueOrDie;

GridManifest MakeManifest() {
  GridManifest m;
  m.name = "toy";
  m.num_vertices = 10;
  m.num_edges = 6;
  m.weighted = true;
  m.sorted = true;
  m.has_index = true;
  m.p = 2;
  m.boundaries = {0, 5, 10};
  m.sub_block_edges = {1, 2, 3, 0};
  return m;
}

TEST(GridManifest, ValidatesGoodManifest) {
  EXPECT_OK(MakeManifest().Validate());
}

TEST(GridManifest, SerializeParseRoundTrip) {
  const GridManifest m = MakeManifest();
  const GridManifest parsed = ValueOrDie(GridManifest::Parse(m.Serialize()));
  EXPECT_EQ(parsed.name, "toy");
  EXPECT_EQ(parsed.num_vertices, 10u);
  EXPECT_EQ(parsed.num_edges, 6u);
  EXPECT_TRUE(parsed.weighted);
  EXPECT_TRUE(parsed.sorted);
  EXPECT_TRUE(parsed.has_index);
  EXPECT_EQ(parsed.p, 2u);
  EXPECT_EQ(parsed.boundaries, m.boundaries);
  EXPECT_EQ(parsed.sub_block_edges, m.sub_block_edges);
}

TEST(GridManifest, AccessorsMatchLayout) {
  const GridManifest m = MakeManifest();
  EXPECT_EQ(m.EdgesIn(0, 0), 1u);
  EXPECT_EQ(m.EdgesIn(0, 1), 2u);
  EXPECT_EQ(m.EdgesIn(1, 0), 3u);
  EXPECT_EQ(m.EdgesIn(1, 1), 0u);
  EXPECT_EQ(m.IntervalSize(0), 5u);
  EXPECT_EQ(m.IntervalSize(1), 5u);
  EXPECT_EQ(m.BytesPerEdge(), kEdgeBytes + kWeightBytes);
  EXPECT_EQ(m.TotalEdgeBytes(), 6 * (kEdgeBytes + kWeightBytes));
}

TEST(GridManifest, RejectsWrongHeader) {
  EXPECT_FALSE(GridManifest::Parse("not a manifest\n").ok());
}

TEST(GridManifest, RejectsEdgeSumMismatch) {
  GridManifest m = MakeManifest();
  m.sub_block_edges = {1, 1, 1, 1};  // sums to 4, not 6
  EXPECT_FALSE(m.Validate().ok());
  EXPECT_FALSE(GridManifest::Parse(m.Serialize()).ok());
}

TEST(GridManifest, RejectsEmptyInterval) {
  GridManifest m = MakeManifest();
  m.boundaries = {0, 5, 5};  // second interval empty... and wrong end
  EXPECT_FALSE(m.Validate().ok());
}

TEST(GridManifest, RejectsBoundariesNotSpanningVertexSet) {
  GridManifest m = MakeManifest();
  m.boundaries = {0, 5, 9};
  EXPECT_FALSE(m.Validate().ok());
}

TEST(GridManifest, RejectsUnknownKey) {
  std::string text = MakeManifest().Serialize();
  text += "mystery=1\n";
  EXPECT_FALSE(GridManifest::Parse(text).ok());
}

TEST(GridManifest, ChecksumRoundTrip) {
  GridManifest m = MakeManifest();
  m.has_checksums = true;
  m.degrees_crc = 0xDEADBEEF;
  m.edge_crcs = {1, 2, 3, 4};
  m.weight_crcs = {5, 6, 7, 8};
  m.index_crcs = {9, 10, 11, 12};
  EXPECT_OK(m.Validate());
  const GridManifest parsed = ValueOrDie(GridManifest::Parse(m.Serialize()));
  EXPECT_TRUE(parsed.has_checksums);
  EXPECT_EQ(parsed.degrees_crc, 0xDEADBEEFu);
  EXPECT_EQ(parsed.edge_crcs, m.edge_crcs);
  EXPECT_EQ(parsed.weight_crcs, m.weight_crcs);
  EXPECT_EQ(parsed.index_crcs, m.index_crcs);
}

TEST(GridManifest, LegacyManifestWithoutChecksumsStillParses) {
  const GridManifest parsed =
      ValueOrDie(GridManifest::Parse(MakeManifest().Serialize()));
  EXPECT_FALSE(parsed.has_checksums);
  EXPECT_TRUE(parsed.edge_crcs.empty());
}

TEST(GridManifest, RejectsGarbageIntegersWithoutThrowing) {
  const std::string text = MakeManifest().Serialize();
  // Each mutation replaces one numeric value with something std::stoull
  // would have thrown on (or silently truncated); Parse must return
  // kCorruptData instead.
  const struct {
    const char* from;
    const char* to;
  } kMutations[] = {
      {"num_edges=6", "num_edges=6x"},
      {"num_edges=6", "num_edges="},
      {"num_vertices=10", "num_vertices=ten"},
      {"num_vertices=10", "num_vertices=99999999999999999999"},
      {"p=2", "p=4294967296"},  // > UINT32_MAX
      {"sub_block_edges=1,2,3,0", "sub_block_edges=1,,3,0"},
  };
  for (const auto& mutation : kMutations) {
    std::string bad = text;
    const auto pos = bad.find(mutation.from);
    ASSERT_NE(pos, std::string::npos) << mutation.from;
    bad.replace(pos, std::string(mutation.from).size(), mutation.to);
    const auto result = GridManifest::Parse(bad);
    ASSERT_FALSE(result.ok()) << mutation.to;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruptData)
        << mutation.to;
  }
}

TEST(GridManifest, RejectsOverflowingSubBlockSum) {
  GridManifest m = MakeManifest();
  // Sums past UINT64_MAX; a naive total would wrap around to num_edges.
  m.sub_block_edges = {UINT64_MAX, UINT64_MAX, 7, 0};
  EXPECT_FALSE(m.Validate().ok());
}

TEST(GridManifest, RejectsImplausibleP) {
  GridManifest m = MakeManifest();
  m.p = 70000;  // p*p alone would be ~5 billion sub-block slots
  const Status status = m.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruptData);
  EXPECT_NE(status.message().find("implausible p"), std::string::npos);
}

TEST(GridManifest, RejectsChecksumListSizeMismatch) {
  GridManifest m = MakeManifest();
  m.has_checksums = true;
  m.edge_crcs = {1, 2, 3};  // needs p*p == 4
  m.weight_crcs = {1, 2, 3, 4};
  m.index_crcs = {1, 2, 3, 4};
  EXPECT_FALSE(m.Validate().ok());
  m.edge_crcs = {1, 2, 3, 4};
  EXPECT_OK(m.Validate());
  m.weight_crcs = {1};
  EXPECT_FALSE(m.Validate().ok());
  m.weight_crcs = {1, 2, 3, 4};
  m.index_crcs.clear();  // has_index demands p*p index CRCs
  EXPECT_FALSE(m.Validate().ok());
}

TEST(GridManifest, RejectsChecksumListsWithoutAlgo) {
  std::string text = MakeManifest().Serialize();
  text += "edge_crcs=1,2,3,4\n";
  EXPECT_FALSE(GridManifest::Parse(text).ok());
}

TEST(GridManifest, SubBlockSlotBoundsChecked) {
  const GridManifest m = MakeManifest();
  EXPECT_EQ(m.SubBlockSlot(1, 1), 3u);
}

TEST(ManifestPaths, StableNames) {
  EXPECT_EQ(ManifestPath("/d"), "/d/manifest.txt");
  EXPECT_EQ(DegreesPath("/d"), "/d/degrees.bin");
  EXPECT_EQ(SubBlockEdgesPath("/d", 1, 2), "/d/sb_1_2.edges");
  EXPECT_EQ(SubBlockWeightsPath("/d", 1, 2), "/d/sb_1_2.weights");
  EXPECT_EQ(SubBlockIndexPath("/d", 1, 2), "/d/sb_1_2.index");
}

}  // namespace
}  // namespace graphsd::partition
