// Ranged index reads: the on-demand model's O(|A|) index access path.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/grid_dataset.hpp"
#include "testing_util.hpp"

namespace graphsd::partition {
namespace {

using graphsd::testing::BuildTestGrid;
using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

class IndexReaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = io::MakeSimulatedDevice();
    RmatOptions options;
    options.scale = 8;
    options.edge_factor = 8;
    graph_ = GenerateRmat(options);
    BuildTestGrid(graph_, *device_, dir_.Sub("ds"), 4);
    dataset_ = std::make_unique<GridDataset>(
        ValueOrDie(GridDataset::Open(*device_, dir_.Sub("ds"))));
  }

  TempDir dir_;
  std::unique_ptr<io::Device> device_;
  EdgeList graph_;
  std::unique_ptr<GridDataset> dataset_;
};

TEST_F(IndexReaderTest, RangedReadsMatchFullIndex) {
  const auto full = ValueOrDie(dataset_->LoadIndex(1, 2));
  IndexReader reader = ValueOrDie(dataset_->OpenIndexReader(1, 2));
  std::vector<std::uint32_t> out;
  // Whole-range read.
  ASSERT_OK(reader.ReadOffsets(0, static_cast<VertexId>(full.size()), out));
  EXPECT_EQ(out, full);
  // Various sub-ranges.
  for (const auto& [first, count] :
       {std::pair<VertexId, VertexId>{0, 1},
        {5, 10},
        {static_cast<VertexId>(full.size() - 3), 3}}) {
    ASSERT_OK(reader.ReadOffsets(first, count, out));
    ASSERT_EQ(out.size(), count);
    for (VertexId k = 0; k < count; ++k) {
      EXPECT_EQ(out[k], full[first + k]) << first << "+" << k;
    }
  }
}

TEST_F(IndexReaderTest, ZeroCountIsNoOp) {
  IndexReader reader = ValueOrDie(dataset_->OpenIndexReader(0, 0));
  std::vector<std::uint32_t> out = {1, 2, 3};
  ASSERT_OK(reader.ReadOffsets(0, 0, out));
  EXPECT_TRUE(out.empty());  // resized to count
}

TEST_F(IndexReaderTest, ChargesOnlyRangedBytes) {
  device_->ResetAccounting();
  IndexReader reader = ValueOrDie(dataset_->OpenIndexReader(2, 1));
  std::vector<std::uint32_t> out;
  ASSERT_OK(reader.ReadOffsets(3, 5, out));
  const auto stats = device_->stats().Snapshot();
  EXPECT_EQ(stats.TotalReadBytes(), 5 * sizeof(std::uint32_t));
  EXPECT_EQ(stats.rand_read_ops, 1u);
}

TEST_F(IndexReaderTest, ConsecutiveRangesClassifySequential) {
  device_->ResetAccounting();
  IndexReader reader = ValueOrDie(dataset_->OpenIndexReader(2, 1));
  std::vector<std::uint32_t> out;
  ASSERT_OK(reader.ReadOffsets(0, 4, out));
  ASSERT_OK(reader.ReadOffsets(4, 4, out));  // continues where prior ended
  const auto stats = device_->stats().Snapshot();
  EXPECT_EQ(stats.rand_read_ops, 1u);
  EXPECT_EQ(stats.seq_read_ops, 1u);
}

TEST_F(IndexReaderTest, MissingIndexIsNotFound) {
  TempDir dir2;
  GridBuildOptions build;
  build.num_intervals = 2;
  build.sort_sub_blocks = false;
  build.build_index = false;
  (void)ValueOrDie(BuildGrid(graph_, *device_, dir2.Sub("ds"), build));
  const auto ds = ValueOrDie(GridDataset::Open(*device_, dir2.Sub("ds")));
  const auto result = ds.OpenIndexReader(0, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace graphsd::partition
