// Offline dataset verification: fresh datasets pass, corruption is caught,
// pre-checksum datasets are reported as unverifiable rather than "clean".
#include "partition/dataset_verify.hpp"

#include <string>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "io/device.hpp"
#include "io/file.hpp"
#include "testing_util.hpp"
#include "util/crc32c.hpp"

namespace graphsd::partition {
namespace {

using testing::TempDir;
using testing::ValueOrDie;

class DatasetVerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = io::MakeSimulatedDevice(io::IoCostModel::Free());
    ds_dir_ = dir_.Sub("ds");
    RmatOptions o;
    o.scale = 6;
    o.edge_factor = 5;
    o.max_weight = 3.0;
    manifest_ = testing::BuildTestGrid(GenerateRmat(o), *device_, ds_dir_, 2);
  }

  /// First sub-block with edges in it.
  std::string NonEmptyEdgeFile() const {
    for (std::uint32_t i = 0; i < manifest_.p; ++i) {
      for (std::uint32_t j = 0; j < manifest_.p; ++j) {
        if (manifest_.EdgesIn(i, j) > 0) {
          return SubBlockEdgesPath(ds_dir_, i, j);
        }
      }
    }
    ADD_FAILURE() << "no non-empty sub-block";
    return "";
  }

  void FlipByte(const std::string& path, std::size_t offset) {
    std::string data = ValueOrDie(io::ReadFileToString(path));
    ASSERT_LT(offset, data.size());
    data[offset] = static_cast<char>(data[offset] ^ 0x01);
    ASSERT_OK(io::WriteStringToFile(path, data));
  }

  TempDir dir_;
  std::unique_ptr<io::Device> device_;
  std::string ds_dir_;
  GridManifest manifest_;
};

TEST_F(DatasetVerifyTest, FreshDatasetVerifiesClean) {
  const DatasetVerifyReport report = ValueOrDie(VerifyDataset(ds_dir_));
  EXPECT_TRUE(report.has_checksums);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.files_checked, 0u);
  EXPECT_NE(report.Summary().find("all checksums match"), std::string::npos);
}

TEST_F(DatasetVerifyTest, FlippedByteInEdgeFileIsDetected) {
  FlipByte(NonEmptyEdgeFile(), 0);
  const DatasetVerifyReport report = ValueOrDie(VerifyDataset(ds_dir_));
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].status.code(), StatusCode::kCorruptData);
  EXPECT_NE(report.Summary().find("CRC32C mismatch"), std::string::npos);
}

TEST_F(DatasetVerifyTest, FlippedByteInDegreesFileIsDetected) {
  FlipByte(DegreesPath(ds_dir_), 1);
  const DatasetVerifyReport report = ValueOrDie(VerifyDataset(ds_dir_));
  EXPECT_FALSE(report.ok());
}

TEST_F(DatasetVerifyTest, TruncatedIndexFileIsDetected) {
  const std::string path = SubBlockIndexPath(ds_dir_, 0, 0);
  const std::string data = ValueOrDie(io::ReadFileToString(path));
  ASSERT_OK(io::WriteStringToFile(path, data.substr(0, data.size() / 2)));
  const DatasetVerifyReport report = ValueOrDie(VerifyDataset(ds_dir_));
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_NE(report.failures[0].status.message().find("size"),
            std::string::npos);
}

TEST_F(DatasetVerifyTest, LegacyDatasetWithoutChecksumsIsReportedAsSuch) {
  // Strip the checksum keys: this is what a dataset built before
  // checksumming looks like. It must load and "verify" without claiming a
  // clean bill of health.
  GridManifest m = ValueOrDie(GridManifest::Parse(
      ValueOrDie(io::ReadFileToString(ManifestPath(ds_dir_)))));
  m.has_checksums = false;
  m.degrees_crc = 0;
  m.edge_crcs.clear();
  m.weight_crcs.clear();
  m.index_crcs.clear();
  ASSERT_OK(io::WriteStringToFile(ManifestPath(ds_dir_), m.Serialize()));

  const DatasetVerifyReport report = ValueOrDie(VerifyDataset(ds_dir_));
  EXPECT_FALSE(report.has_checksums);
  EXPECT_TRUE(report.ok());
  EXPECT_NE(report.Summary().find("no checksums recorded"),
            std::string::npos);
}

TEST_F(DatasetVerifyTest, MissingDatasetDirectoryFails) {
  EXPECT_FALSE(VerifyDataset(dir_.Sub("nope")).ok());
}

TEST(VerifyFileCrc, ChecksSizeAndChecksum) {
  TempDir dir;
  const std::string path = dir.Sub("f.bin");
  const std::string payload = "integrity matters";
  ASSERT_OK(io::WriteStringToFile(path, payload));
  const std::uint32_t crc = Crc32c(0, payload.data(), payload.size());

  EXPECT_OK(VerifyFileCrc(path, payload.size(), crc));
  EXPECT_EQ(VerifyFileCrc(path, payload.size() + 1, crc).code(),
            StatusCode::kCorruptData);
  EXPECT_EQ(VerifyFileCrc(path, payload.size(), crc ^ 1).code(),
            StatusCode::kCorruptData);
  EXPECT_EQ(VerifyFileCrc(dir.Sub("absent.bin"), 0, 0).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace graphsd::partition
