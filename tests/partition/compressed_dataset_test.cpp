// Compressed grid datasets end to end: manifest v2 round-trip and
// forward-compat rejection, builder/loader round-trips against the raw
// layout, external-builder equivalence, dataset verification of frames,
// and fault behavior (transient EIO retried, bit flips rejected).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "compress/frame.hpp"
#include "graph/edge_io.hpp"
#include "graph/generators.hpp"
#include "io/fault_injector.hpp"
#include "io/file.hpp"
#include "partition/dataset_verify.hpp"
#include "partition/external_builder.hpp"
#include "partition/grid_dataset.hpp"
#include "partition/manifest.hpp"
#include "testing_util.hpp"

namespace graphsd::partition {
namespace {

using graphsd::testing::BuildTestGrid;
using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

EdgeList MakeGraph() {
  RmatOptions options;
  options.scale = 7;
  options.edge_factor = 6;
  options.max_weight = 10.0;
  return GenerateRmat(options);
}

/// XORs one byte of `path` at `offset` in place.
void FlipByte(const std::string& path, std::uint64_t offset) {
  io::File file =
      ValueOrDie(io::File::Open(path, io::OpenMode::kReadWrite));
  std::uint8_t byte = 0;
  ASSERT_OK(file.ReadAt(offset, std::span(&byte, 1)));
  byte ^= 0x20;
  ASSERT_OK(file.WriteAt(offset, std::span(&byte, 1)));
}

std::uint64_t FileSize(const std::string& path) {
  io::File file = ValueOrDie(io::File::Open(path, io::OpenMode::kRead));
  return ValueOrDie(file.Size());
}

class CompressedDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = io::MakePosixDevice();
    graph_ = MakeGraph();
    raw_manifest_ = BuildTestGrid(graph_, *device_, RawDir(), 4);
    manifest_ =
        BuildTestGrid(graph_, *device_, CompressedDir(), 4, "test",
                      "varint-delta");
  }

  std::string RawDir() const { return dir_.Sub("raw"); }
  std::string CompressedDir() const { return dir_.Sub("compressed"); }

  /// Path of the first compressed edge frame with a non-empty payload.
  std::string FirstNonEmptyFramePath() const {
    for (std::uint32_t i = 0; i < manifest_.p; ++i) {
      for (std::uint32_t j = 0; j < manifest_.p; ++j) {
        if (manifest_.EdgesIn(i, j) != 0) {
          return SubBlockEdgesPath(CompressedDir(), i, j);
        }
      }
    }
    ADD_FAILURE() << "no non-empty sub-block found";
    return {};
  }

  TempDir dir_;
  std::unique_ptr<io::Device> device_;
  EdgeList graph_;
  GridManifest raw_manifest_;
  GridManifest manifest_;
};

TEST_F(CompressedDatasetTest, ManifestV2RoundTrips) {
  EXPECT_TRUE(manifest_.compressed());
  EXPECT_EQ(manifest_.format_version, 2u);
  EXPECT_EQ(manifest_.codec, "varint-delta");
  ASSERT_EQ(manifest_.edge_frame_bytes.size(),
            static_cast<std::size_t>(manifest_.p) * manifest_.p);

  const std::string text =
      ValueOrDie(io::ReadFileToString(ManifestPath(CompressedDir())));
  EXPECT_TRUE(text.starts_with("graphsd_grid_manifest v2\n"));
  EXPECT_NE(text.find("format_version=2\n"), std::string::npos);
  EXPECT_NE(text.find("codec=varint-delta\n"), std::string::npos);
  EXPECT_NE(text.find("edge_frame_bytes="), std::string::npos);

  const GridManifest parsed = ValueOrDie(GridManifest::Parse(text));
  EXPECT_EQ(parsed.Serialize(), manifest_.Serialize());
  EXPECT_EQ(parsed.edge_frame_bytes, manifest_.edge_frame_bytes);
  EXPECT_EQ(parsed.TotalEdgeFileBytes(), manifest_.TotalEdgeFileBytes());
}

TEST_F(CompressedDatasetTest, RawManifestKeepsV1Text) {
  const std::string text =
      ValueOrDie(io::ReadFileToString(ManifestPath(RawDir())));
  EXPECT_TRUE(text.starts_with("graphsd_grid_manifest v1\n"));
  EXPECT_EQ(text.find("format_version="), std::string::npos);
  EXPECT_EQ(text.find("codec="), std::string::npos);
  EXPECT_EQ(text.find("edge_frame_bytes="), std::string::npos);
  const GridManifest parsed = ValueOrDie(GridManifest::Parse(text));
  EXPECT_EQ(parsed.format_version, 1u);
  EXPECT_FALSE(parsed.compressed());
  EXPECT_EQ(parsed.EdgeFileBytes(0, 0), parsed.EdgesIn(0, 0) * kEdgeBytes);
  EXPECT_EQ(parsed.TotalEdgeFileBytes(), parsed.num_edges * kEdgeBytes);
}

TEST_F(CompressedDatasetTest, ManifestRejectsNewerFormatVersion) {
  std::string text = manifest_.Serialize();
  const auto ReplaceOnce = [&text](const std::string& from,
                                   const std::string& to) {
    const auto at = text.find(from);
    ASSERT_NE(at, std::string::npos);
    text.replace(at, from.size(), to);
  };
  ReplaceOnce("graphsd_grid_manifest v2", "graphsd_grid_manifest v3");
  ReplaceOnce("format_version=2", "format_version=3");
  const Status status = GridManifest::Parse(text).status();
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
  EXPECT_NE(status.message().find("newer"), std::string::npos);
}

TEST_F(CompressedDatasetTest, ManifestRejectsVersionDisagreement) {
  std::string text = manifest_.Serialize();
  const auto at = text.find("format_version=2");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 16, "format_version=1");
  EXPECT_EQ(GridManifest::Parse(text).status().code(),
            StatusCode::kCorruptData);
}

TEST_F(CompressedDatasetTest, OpenRejectsUnknownCodec) {
  std::string text = manifest_.Serialize();
  const auto at = text.find("codec=varint-delta");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 18, "codec=zstd");
  ASSERT_OK(io::WriteStringToFile(ManifestPath(CompressedDir()), text));
  const Status status =
      GridDataset::Open(*device_, CompressedDir()).status();
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
  EXPECT_NE(status.message().find("zstd"), std::string::npos);
}

TEST_F(CompressedDatasetTest, FrameBytesMatchFilesOnDisk) {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < manifest_.p; ++i) {
    for (std::uint32_t j = 0; j < manifest_.p; ++j) {
      const std::uint64_t bytes = manifest_.EdgeFileBytes(i, j);
      EXPECT_GE(bytes, compress::kFrameHeaderBytes);
      EXPECT_EQ(bytes, FileSize(SubBlockEdgesPath(CompressedDir(), i, j)));
      total += bytes;
    }
  }
  EXPECT_EQ(total, manifest_.TotalEdgeFileBytes());
}

TEST_F(CompressedDatasetTest, SortedGraphCompresses) {
  // Sorted sub-blocks must come out smaller than the raw layout even
  // counting the per-file frame headers (reported, engine-level benches
  // surface the ratio; here it must at least be a real reduction).
  EXPECT_LT(manifest_.TotalEdgeFileBytes(),
            manifest_.num_edges * kEdgeBytes);
}

TEST_F(CompressedDatasetTest, LoadSubBlockMatchesRawLayout) {
  const GridDataset raw = ValueOrDie(GridDataset::Open(*device_, RawDir()));
  const GridDataset compressed =
      ValueOrDie(GridDataset::Open(*device_, CompressedDir()));
  EXPECT_FALSE(raw.compressed());
  EXPECT_TRUE(compressed.compressed());
  EXPECT_EQ(compressed.codec_name(), "varint-delta");
  for (std::uint32_t i = 0; i < manifest_.p; ++i) {
    for (std::uint32_t j = 0; j < manifest_.p; ++j) {
      SCOPED_TRACE(::testing::Message() << "sub-block " << i << "," << j);
      const SubBlock want = ValueOrDie(raw.LoadSubBlock(i, j, true));
      const SubBlock got = ValueOrDie(compressed.LoadSubBlock(i, j, true));
      EXPECT_EQ(got.edges, want.edges);
      EXPECT_EQ(got.weights, want.weights);
      EXPECT_EQ(got.disk_bytes, compressed.SubBlockDiskBytes(i, j, true));
      EXPECT_EQ(want.disk_bytes, raw.SubBlockDiskBytes(i, j, true));
    }
  }
}

TEST_F(CompressedDatasetTest, FetchDecodeSplitMatchesLoad) {
  const GridDataset ds =
      ValueOrDie(GridDataset::Open(*device_, CompressedDir()));
  const DecodeStats before = ds.decode_stats();
  std::uint64_t frames_with_payload = 0;
  for (std::uint32_t i = 0; i < manifest_.p; ++i) {
    for (std::uint32_t j = 0; j < manifest_.p; ++j) {
      SCOPED_TRACE(::testing::Message() << "sub-block " << i << "," << j);
      SubBlockPayload payload = ValueOrDie(ds.FetchSubBlock(i, j, true));
      EXPECT_TRUE(payload.block.edges.empty());
      EXPECT_FALSE(payload.frame.empty());
      ASSERT_OK(ds.DecodeSubBlock(i, j, payload));
      EXPECT_TRUE(payload.frame.empty());
      const SubBlock loaded = ValueOrDie(ds.LoadSubBlock(i, j, true));
      EXPECT_EQ(payload.block.edges, loaded.edges);
      EXPECT_EQ(payload.block.weights, loaded.weights);
      if (manifest_.EdgesIn(i, j) != 0) ++frames_with_payload;
    }
  }
  const DecodeStats after = ds.decode_stats();
  // Both halves of the loop decoded every frame once.
  EXPECT_EQ(after.frames_decoded - before.frames_decoded,
            2 * static_cast<std::uint64_t>(manifest_.p) * manifest_.p);
  EXPECT_EQ(after.decoded_bytes - before.decoded_bytes,
            2 * manifest_.num_edges * kEdgeBytes);
  EXPECT_EQ(after.compressed_bytes - before.compressed_bytes,
            2 * manifest_.TotalEdgeFileBytes());
  EXPECT_GT(frames_with_payload, 0u);
}

TEST_F(CompressedDatasetTest, ExternalBuilderMatchesInCore) {
  const std::string edges_path = dir_.Sub("graph.gsde");
  ASSERT_OK(WriteBinaryEdgeList(graph_, *device_, edges_path));
  ExternalBuildOptions options;
  options.num_intervals = 4;
  options.name = "test";
  options.codec = "varint-delta";
  const std::string external_dir = dir_.Sub("external");
  const GridManifest external = ValueOrDie(
      BuildGridExternal(edges_path, *device_, external_dir, options));
  EXPECT_EQ(external.Serialize(), manifest_.Serialize());
  for (std::uint32_t i = 0; i < manifest_.p; ++i) {
    for (std::uint32_t j = 0; j < manifest_.p; ++j) {
      SCOPED_TRACE(::testing::Message() << "sub-block " << i << "," << j);
      EXPECT_EQ(
          ValueOrDie(
              io::ReadFileToString(SubBlockEdgesPath(external_dir, i, j))),
          ValueOrDie(io::ReadFileToString(
              SubBlockEdgesPath(CompressedDir(), i, j))));
    }
  }
}

TEST_F(CompressedDatasetTest, VerifyPassesOnCleanDataset) {
  const DatasetVerifyReport report =
      ValueOrDie(VerifyDataset(CompressedDir()));
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.has_checksums);
  EXPECT_EQ(report.codec, "varint-delta");
  const std::uint64_t slots =
      static_cast<std::uint64_t>(manifest_.p) * manifest_.p;
  EXPECT_EQ(report.frames_checked, slots);
  std::uint64_t by_codec = 0;
  for (const auto& [name, count] : report.frame_codecs) {
    EXPECT_TRUE(name == "none" || name == "varint-delta") << name;
    by_codec += count;
  }
  EXPECT_EQ(by_codec, slots);
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("edge codec varint-delta"), std::string::npos);
}

TEST_F(CompressedDatasetTest, VerifyDetectsFramePayloadFlip) {
  const std::string victim = FirstNonEmptyFramePath();
  FlipByte(victim, compress::kFrameHeaderBytes);
  const DatasetVerifyReport report =
      ValueOrDie(VerifyDataset(CompressedDir()));
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& failure : report.failures) {
    if (failure.path == victim) {
      found = true;
      EXPECT_EQ(failure.status.code(), StatusCode::kCorruptData);
    }
  }
  EXPECT_TRUE(found) << report.Summary();
}

TEST_F(CompressedDatasetTest, VerifyDetectsTruncatedFrame) {
  const std::string victim = FirstNonEmptyFramePath();
  const std::uint64_t size = FileSize(victim);
  {
    io::File file =
        ValueOrDie(io::File::Open(victim, io::OpenMode::kReadWrite));
    ASSERT_OK(file.Truncate(size - 1));
  }
  const DatasetVerifyReport report =
      ValueOrDie(VerifyDataset(CompressedDir()));
  EXPECT_FALSE(report.ok());
}

TEST_F(CompressedDatasetTest, LoadRejectsCorruptFrame) {
  const std::string victim = FirstNonEmptyFramePath();
  FlipByte(victim, compress::kFrameHeaderBytes);
  const GridDataset ds =
      ValueOrDie(GridDataset::Open(*device_, CompressedDir()));
  for (std::uint32_t i = 0; i < manifest_.p; ++i) {
    for (std::uint32_t j = 0; j < manifest_.p; ++j) {
      if (SubBlockEdgesPath(CompressedDir(), i, j) != victim) continue;
      EXPECT_EQ(ds.LoadSubBlock(i, j, false).status().code(),
                StatusCode::kCorruptData);
      return;
    }
  }
  FAIL() << "victim sub-block not found";
}

TEST_F(CompressedDatasetTest, TransientReadFaultIsRetried) {
  const GridDataset ds =
      ValueOrDie(GridDataset::Open(*device_, CompressedDir()));
  io::FaultInjector injector(/*seed=*/11);
  io::FaultRule rule;
  rule.kind = io::FaultKind::kEio;
  rule.op = io::FaultOp::kRead;
  rule.path_substring = FirstNonEmptyFramePath();
  rule.nth = 1;
  rule.max_fires = 1;
  injector.AddRule(rule);
  device_->set_fault_injector(&injector);
  const auto before = device_->stats().Snapshot();
  for (std::uint32_t i = 0; i < manifest_.p; ++i) {
    for (std::uint32_t j = 0; j < manifest_.p; ++j) {
      if (SubBlockEdgesPath(CompressedDir(), i, j) != rule.path_substring) {
        continue;
      }
      const SubBlock block = ValueOrDie(ds.LoadSubBlock(i, j, false));
      EXPECT_EQ(block.edges.size(), manifest_.EdgesIn(i, j));
    }
  }
  device_->set_fault_injector(nullptr);
  EXPECT_EQ(injector.faults_injected(), 1u);
  EXPECT_GE((device_->stats().Snapshot() - before).retries, 1u);
}

}  // namespace
}  // namespace graphsd::partition
