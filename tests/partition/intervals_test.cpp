#include "partition/intervals.hpp"

#include <gtest/gtest.h>

namespace graphsd::partition {
namespace {

TEST(EqualIntervals, EvenSplit) {
  const auto b = ComputeEqualIntervals(100, 4);
  EXPECT_EQ(b, (IntervalBoundaries{0, 25, 50, 75, 100}));
}

TEST(EqualIntervals, UnevenSplitCoversEverything) {
  const auto b = ComputeEqualIntervals(10, 3);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), 10u);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) EXPECT_LT(b[i], b[i + 1]);
}

TEST(EqualIntervals, MoreIntervalsThanVerticesCaps) {
  const auto b = ComputeEqualIntervals(3, 10);
  EXPECT_EQ(b.size(), 4u);  // capped at 3 intervals
  EXPECT_EQ(b.back(), 3u);
}

TEST(EqualIntervals, SingleInterval) {
  const auto b = ComputeEqualIntervals(7, 1);
  EXPECT_EQ(b, (IntervalBoundaries{0, 7}));
}

TEST(BalancedIntervals, SkewedDegreesBalanceEdges) {
  // Vertex 0 has 90 edges, the other 9 have 1 each: with P=2 the heavy
  // vertex must sit alone-ish in the first interval.
  std::vector<std::uint32_t> degrees = {90, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  const auto b = ComputeBalancedIntervals(degrees, 2);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 0u);
  EXPECT_EQ(b[2], 10u);
  EXPECT_LE(b[1], 2u);  // boundary lands right after the hub
}

TEST(BalancedIntervals, NoEmptyIntervals) {
  std::vector<std::uint32_t> degrees(20, 0);  // all zero degrees
  degrees[19] = 100;
  const auto b = ComputeBalancedIntervals(degrees, 4);
  ASSERT_EQ(b.size(), 5u);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    EXPECT_LT(b[i], b[i + 1]) << "interval " << i << " empty";
  }
  EXPECT_EQ(b.back(), 20u);
}

TEST(BalancedIntervals, UniformDegreesSplitEvenly) {
  std::vector<std::uint32_t> degrees(100, 5);
  const auto b = ComputeBalancedIntervals(degrees, 4);
  ASSERT_EQ(b.size(), 5u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto size = b[i + 1] - b[i];
    EXPECT_GE(size, 20u);
    EXPECT_LE(size, 30u);
  }
}

TEST(IntervalOf, FindsContainingInterval) {
  const IntervalBoundaries b = {0, 10, 20, 35};
  EXPECT_EQ(IntervalOf(b, 0), 0u);
  EXPECT_EQ(IntervalOf(b, 9), 0u);
  EXPECT_EQ(IntervalOf(b, 10), 1u);
  EXPECT_EQ(IntervalOf(b, 19), 1u);
  EXPECT_EQ(IntervalOf(b, 20), 2u);
  EXPECT_EQ(IntervalOf(b, 34), 2u);
}

TEST(ChooseIntervalCount, SmallGraphNeedsOneInterval) {
  EXPECT_EQ(ChooseIntervalCount(100, 1000, 1 << 30, false), 1u);
}

TEST(ChooseIntervalCount, TightBudgetNeedsMoreIntervals) {
  // 1M edges * 8B = 8MB; with a 1MB budget we need >= 8 intervals.
  const auto p = ChooseIntervalCount(1000, 1'000'000, 1 << 20, false);
  EXPECT_GE(p, 8u);
  EXPECT_LE(p, 16u);
}

TEST(ChooseIntervalCount, WeightedEdgesNeedMore) {
  const auto plain = ChooseIntervalCount(1000, 1'000'000, 1 << 20, false);
  const auto weighted = ChooseIntervalCount(1000, 1'000'000, 1 << 20, true);
  EXPECT_GE(weighted, plain);
}

}  // namespace
}  // namespace graphsd::partition
