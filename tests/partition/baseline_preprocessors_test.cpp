#include "partition/baseline_preprocessors.hpp"

#include <gtest/gtest.h>

#include "graph/edge_io.hpp"
#include "graph/generators.hpp"
#include "partition/grid_dataset.hpp"
#include "testing_util.hpp"

namespace graphsd::partition {
namespace {

using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

class PreprocessorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = io::MakeSimulatedDevice();
    RmatOptions options;
    options.scale = 8;
    options.edge_factor = 6;
    graph_ = GenerateRmat(options);
    raw_path_ = dir_.Sub("raw.bin");
    ASSERT_OK(WriteBinaryEdgeList(graph_, *device_, raw_path_));
    options_.num_intervals = 4;
    options_.name = "pp";
  }

  TempDir dir_;
  std::unique_ptr<io::Device> device_;
  EdgeList graph_;
  std::string raw_path_;
  PreprocessOptions options_;
};

TEST_F(PreprocessorsTest, GraphSDPipelineProducesSortedIndexedGrid) {
  const PreprocessReport report = ValueOrDie(
      PreprocessGraphSD(raw_path_, *device_, dir_.Sub("gsd"), options_));
  EXPECT_EQ(report.system, "GraphSD");
  EXPECT_TRUE(report.manifest.sorted);
  EXPECT_TRUE(report.manifest.has_index);
  EXPECT_GT(report.io_seconds, 0.0);
  const GridDataset ds = ValueOrDie(GridDataset::Open(*device_, dir_.Sub("gsd")));
  EXPECT_EQ(ds.num_edges(), graph_.num_edges());
}

TEST_F(PreprocessorsTest, LumosPipelineSkipsSortAndIndex) {
  const PreprocessReport report = ValueOrDie(
      PreprocessLumos(raw_path_, *device_, dir_.Sub("lumos"), options_));
  EXPECT_FALSE(report.manifest.sorted);
  EXPECT_FALSE(report.manifest.has_index);
  const GridDataset ds =
      ValueOrDie(GridDataset::Open(*device_, dir_.Sub("lumos")));
  EXPECT_EQ(ds.num_edges(), graph_.num_edges());
}

TEST_F(PreprocessorsTest, HusGraphWritesTwoCopies) {
  const PreprocessReport report = ValueOrDie(
      PreprocessHusGraph(raw_path_, *device_, dir_.Sub("hus"), options_));
  EXPECT_EQ(report.system, "HUS-Graph");
  // Both orientations exist on disk.
  EXPECT_TRUE(io::PathExists(ManifestPath(dir_.Sub("hus"))));
  EXPECT_TRUE(io::PathExists(ManifestPath(dir_.Sub("hus") + "_src")));
  const GridDataset fwd = ValueOrDie(GridDataset::Open(*device_, dir_.Sub("hus")));
  const GridDataset rev =
      ValueOrDie(GridDataset::Open(*device_, dir_.Sub("hus") + "_src"));
  EXPECT_EQ(fwd.num_edges(), graph_.num_edges());
  EXPECT_EQ(rev.num_edges(), graph_.num_edges());
}

// The Figure-8 ordering: HUS-Graph (two sorted copies) costs the most,
// Lumos (bucket only) the least, GraphSD in between.
TEST_F(PreprocessorsTest, Figure8CostOrdering) {
  const PreprocessReport gsd = ValueOrDie(
      PreprocessGraphSD(raw_path_, *device_, dir_.Sub("f_gsd"), options_));
  const PreprocessReport hus = ValueOrDie(
      PreprocessHusGraph(raw_path_, *device_, dir_.Sub("f_hus"), options_));
  const PreprocessReport lumos = ValueOrDie(
      PreprocessLumos(raw_path_, *device_, dir_.Sub("f_lumos"), options_));
  EXPECT_GT(hus.io.TotalWriteBytes(), gsd.io.TotalWriteBytes());
  EXPECT_GE(gsd.io.TotalWriteBytes(), lumos.io.TotalWriteBytes());
  EXPECT_GT(hus.io_seconds, gsd.io_seconds);
  EXPECT_GE(gsd.io_seconds, lumos.io_seconds * 0.99);
}

TEST_F(PreprocessorsTest, MissingRawFileFails) {
  EXPECT_FALSE(
      PreprocessGraphSD(dir_.Sub("missing.bin"), *device_, dir_.Sub("x"),
                        options_)
          .ok());
}

TEST_F(PreprocessorsTest, ReportsIncludeRawReadTraffic) {
  device_->ResetAccounting();
  const PreprocessReport report = ValueOrDie(
      PreprocessGraphSD(raw_path_, *device_, dir_.Sub("t"), options_));
  EXPECT_GE(report.io.TotalReadBytes(), graph_.num_edges() * sizeof(Edge));
  EXPECT_GE(report.io.TotalWriteBytes(), graph_.num_edges() * sizeof(Edge));
}

}  // namespace
}  // namespace graphsd::partition
