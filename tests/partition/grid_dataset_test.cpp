#include "partition/grid_dataset.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "testing_util.hpp"

namespace graphsd::partition {
namespace {

using graphsd::testing::BuildTestGrid;
using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

class GridDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = io::MakePosixDevice();
    RmatOptions options;
    options.scale = 7;
    options.edge_factor = 6;
    options.max_weight = 10.0;
    graph_ = GenerateRmat(options);
    manifest_ = BuildTestGrid(graph_, *device_, dir_.Sub("ds"), 4);
  }

  TempDir dir_;
  std::unique_ptr<io::Device> device_;
  EdgeList graph_;
  GridManifest manifest_;
};

TEST_F(GridDatasetTest, OpenExposesMetadata) {
  const GridDataset ds = ValueOrDie(GridDataset::Open(*device_, dir_.Sub("ds")));
  EXPECT_EQ(ds.num_vertices(), graph_.num_vertices());
  EXPECT_EQ(ds.num_edges(), graph_.num_edges());
  EXPECT_EQ(ds.p(), 4u);
  EXPECT_TRUE(ds.weighted());
  EXPECT_EQ(ds.out_degrees(), graph_.OutDegrees());
}

TEST_F(GridDatasetTest, OpenMissingDirectoryFails) {
  EXPECT_FALSE(GridDataset::Open(*device_, dir_.Sub("nope")).ok());
}

TEST_F(GridDatasetTest, LoadSubBlockWithAndWithoutWeights) {
  const GridDataset ds = ValueOrDie(GridDataset::Open(*device_, dir_.Sub("ds")));
  const SubBlock plain = ValueOrDie(ds.LoadSubBlock(0, 0, false));
  EXPECT_TRUE(plain.weights.empty());
  const SubBlock weighted = ValueOrDie(ds.LoadSubBlock(0, 0, true));
  EXPECT_EQ(weighted.weights.size(), weighted.edges.size());
  EXPECT_EQ(plain.edges, weighted.edges);
}

TEST_F(GridDatasetTest, SubBlockBytesTracksWeightChoice) {
  const GridDataset ds = ValueOrDie(GridDataset::Open(*device_, dir_.Sub("ds")));
  const auto count = manifest_.EdgesIn(1, 2);
  EXPECT_EQ(ds.SubBlockBytes(1, 2, false), count * kEdgeBytes);
  EXPECT_EQ(ds.SubBlockBytes(1, 2, true), count * (kEdgeBytes + kWeightBytes));
}

TEST_F(GridDatasetTest, SelectiveRangeReadMatchesFullLoad) {
  const GridDataset ds = ValueOrDie(GridDataset::Open(*device_, dir_.Sub("ds")));
  const SubBlock full = ValueOrDie(ds.LoadSubBlock(1, 1, true));
  if (full.edges.size() < 4) GTEST_SKIP() << "sub-block too small";

  SubBlockReader reader = ValueOrDie(ds.OpenSubBlockReader(1, 1, true));
  std::vector<Edge> edges;
  std::vector<Weight> weights;
  ASSERT_OK(reader.ReadRange(1, 2, edges, &weights));
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], full.edges[1]);
  EXPECT_EQ(edges[1], full.edges[2]);
  EXPECT_FLOAT_EQ(weights[0], full.weights[1]);

  // Appending a second range keeps earlier data.
  ASSERT_OK(reader.ReadRange(0, 1, edges, &weights));
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[2], full.edges[0]);
}

TEST_F(GridDatasetTest, ZeroCountRangeReadIsNoOp) {
  const GridDataset ds = ValueOrDie(GridDataset::Open(*device_, dir_.Sub("ds")));
  SubBlockReader reader = ValueOrDie(ds.OpenSubBlockReader(0, 0, false));
  std::vector<Edge> edges;
  ASSERT_OK(reader.ReadRange(0, 0, edges, nullptr));
  EXPECT_TRUE(edges.empty());
}

TEST_F(GridDatasetTest, ReadRunsMatchesReadRangeLoopOnEveryBackend) {
  // The batched path (real:ssd-style gap merging) must produce exactly what
  // the per-run loop produces — same edges, same weights, same order.
  const GridDataset ds = ValueOrDie(GridDataset::Open(*device_, dir_.Sub("ds")));
  const SubBlock full = ValueOrDie(ds.LoadSubBlock(1, 1, true));
  if (full.edges.size() < 10) GTEST_SKIP() << "sub-block too small";
  const std::uint64_t n = full.edges.size();
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> runs = {
      {0, 2}, {3, 4}, {6, n - 1}, {n - 1, n}};

  std::vector<Edge> looped;
  std::vector<Weight> looped_w;
  {
    SubBlockReader reader = ValueOrDie(ds.OpenSubBlockReader(1, 1, true));
    for (const auto& [first, end] : runs) {
      ASSERT_OK(reader.ReadRange(first, end - first, looped, &looped_w));
    }
  }
  for (const char* kind : {"posix", "real:ssd"}) {
    auto device = ValueOrDie(io::MakeDeviceForKind(kind));
    const GridDataset batched_ds =
        ValueOrDie(GridDataset::Open(*device, dir_.Sub("ds")));
    SubBlockReader reader =
        ValueOrDie(batched_ds.OpenSubBlockReader(1, 1, true));
    std::vector<Edge> edges;
    std::vector<Weight> weights;
    ASSERT_OK(reader.ReadRuns(runs, edges, &weights));
    EXPECT_EQ(edges, looped) << kind;
    EXPECT_EQ(weights, looped_w) << kind;
  }
}

TEST_F(GridDatasetTest, ReadRunsMergesGapsIntoFewerRequests) {
  auto sim = io::MakeSimulatedDevice();
  // Force batching on a simulated device (sim profiles default it off) to
  // observe the request-count collapse deterministically.
  const GridDataset probe = ValueOrDie(GridDataset::Open(*sim, dir_.Sub("ds")));
  const SubBlock full = ValueOrDie(probe.LoadSubBlock(1, 1, false));
  if (full.edges.size() < 10) GTEST_SKIP() << "sub-block too small";
  const std::uint64_t n = full.edges.size();
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> runs = {
      {0, 2}, {4, 6}, {8, n}};

  io::DeviceOptions opts;
  opts.charge_virtual_time = false;
  opts.read_batch_gap_bytes = 64;  // gaps of 2 edges merge comfortably
  io::Device merged(opts);
  const GridDataset ds = ValueOrDie(GridDataset::Open(merged, dir_.Sub("ds")));
  merged.ResetAccounting();
  SubBlockReader reader = ValueOrDie(ds.OpenSubBlockReader(1, 1, false));
  std::vector<Edge> edges;
  ASSERT_OK(reader.ReadRuns(runs, edges, nullptr));
  const auto s = merged.stats().Snapshot();
  EXPECT_EQ(s.rand_read_ops + s.seq_read_ops, 1u);  // one merged request
  EXPECT_EQ(s.vectored_reads, 1u);
  // All bytes from first run start to block end crossed the bus, gaps
  // included.
  EXPECT_EQ(s.TotalReadBytes(), n * sizeof(Edge));
  // Gap bytes are discarded: the output holds only the requested runs.
  std::vector<Edge> expected;
  for (const auto& [first, end] : runs) {
    expected.insert(expected.end(), full.edges.begin() + first,
                    full.edges.begin() + end);
  }
  EXPECT_EQ(edges, expected);
}

TEST_F(GridDatasetTest, ReadRunsRejectsNonAscendingScript) {
  const GridDataset ds = ValueOrDie(GridDataset::Open(*device_, dir_.Sub("ds")));
  SubBlockReader reader = ValueOrDie(ds.OpenSubBlockReader(1, 1, false));
  std::vector<Edge> edges;
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> overlapping = {
      {0, 4}, {2, 6}};
  EXPECT_EQ(reader.ReadRuns(overlapping, edges, nullptr).code(),
            StatusCode::kCorruptData);
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> out_of_range = {
      {0, manifest_.EdgesIn(1, 1) + 1}};
  EXPECT_EQ(reader.ReadRuns(out_of_range, edges, nullptr).code(),
            StatusCode::kCorruptData);
  EXPECT_TRUE(edges.empty());
}

TEST_F(GridDatasetTest, IndexAgreesWithEdgeContents) {
  const GridDataset ds = ValueOrDie(GridDataset::Open(*device_, dir_.Sub("ds")));
  const auto index = ValueOrDie(ds.LoadIndex(2, 3));
  const SubBlock block = ValueOrDie(ds.LoadSubBlock(2, 3, false));
  EXPECT_EQ(index.back(), block.edges.size());
  // Per-vertex ranges reconstruct the whole block in order.
  SubBlockReader reader = ValueOrDie(ds.OpenSubBlockReader(2, 3, false));
  std::vector<Edge> rebuilt;
  for (std::size_t local = 0; local + 1 < index.size(); ++local) {
    ASSERT_OK(reader.ReadRange(index[local], index[local + 1] - index[local],
                               rebuilt, nullptr));
  }
  EXPECT_EQ(rebuilt, block.edges);
}

TEST_F(GridDatasetTest, FullSubBlockLoadChargesOneSeekThenStreams) {
  auto sim = io::MakeSimulatedDevice();
  // Re-open through a simulated device to observe classification.
  const GridDataset ds = ValueOrDie(GridDataset::Open(*sim, dir_.Sub("ds")));
  sim->ResetAccounting();
  const SubBlock block = ValueOrDie(ds.LoadSubBlock(0, 1, false));
  if (block.edges.empty()) GTEST_SKIP();
  const auto stats = sim->stats().Snapshot();
  EXPECT_EQ(stats.rand_read_ops, 1u);  // one positioned read for the block
  EXPECT_EQ(stats.TotalReadBytes(), block.edges.size() * sizeof(Edge));
}

}  // namespace
}  // namespace graphsd::partition
