#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace graphsd::obs {
namespace {

TEST(JsonWriter, EmptyObject) {
  JsonWriter json;
  json.BeginObject();
  json.EndObject();
  EXPECT_EQ(json.Finish(), "{}");
}

TEST(JsonWriter, EmptyArray) {
  JsonWriter json;
  json.BeginArray();
  json.EndArray();
  EXPECT_EQ(json.Finish(), "[]");
}

TEST(JsonWriter, ObjectFieldsGetCommas) {
  JsonWriter json;
  json.BeginObject();
  json.Field("a", std::uint64_t{1});
  json.Field("b", std::int64_t{-2});
  json.Field("c", true);
  json.Field("d", "text");
  json.EndObject();
  EXPECT_EQ(json.Finish(), R"({"a":1,"b":-2,"c":true,"d":"text"})");
}

TEST(JsonWriter, ArrayValuesGetCommas) {
  JsonWriter json;
  json.BeginArray();
  json.Uint(1);
  json.Uint(2);
  json.Null();
  json.Bool(false);
  json.EndArray();
  EXPECT_EQ(json.Finish(), "[1,2,null,false]");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter json;
  json.BeginObject();
  json.Key("rows");
  json.BeginArray();
  json.BeginObject();
  json.Field("id", std::uint64_t{7});
  json.EndObject();
  json.BeginObject();
  json.Field("id", std::uint64_t{8});
  json.EndObject();
  json.EndArray();
  json.Field("done", true);
  json.EndObject();
  EXPECT_EQ(json.Finish(), R"({"rows":[{"id":7},{"id":8}],"done":true})");
}

TEST(JsonWriter, EscapesStringsAndKeys) {
  JsonWriter json;
  json.BeginObject();
  json.Field("quote\"key", "back\\slash");
  json.Field("ctl", std::string("a\nb\tc\x01"));
  json.EndObject();
  EXPECT_EQ(json.Finish(),
            "{\"quote\\\"key\":\"back\\\\slash\","
            "\"ctl\":\"a\\nb\\tc\\u0001\"}");
}

TEST(JsonWriter, JsonEscapePassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("plain ascii 123"), "plain ascii 123");
  EXPECT_EQ(JsonEscape("\b\f\r"), "\\b\\f\\r");
}

TEST(JsonWriter, DoublesRoundTrip) {
  JsonWriter json;
  json.BeginArray();
  json.Double(0.1);
  json.Double(-1234.5);
  json.EndArray();
  const std::string out = json.Finish();
  // %.17g preserves the exact double: parsing the text back must recover it.
  double a = 0;
  double b = 0;
  ASSERT_EQ(std::sscanf(out.c_str(), "[%lf,%lf]", &a, &b), 2);
  EXPECT_EQ(a, 0.1);
  EXPECT_EQ(b, -1234.5);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter json;
  json.BeginArray();
  json.Double(std::numeric_limits<double>::quiet_NaN());
  json.Double(std::numeric_limits<double>::infinity());
  json.Double(-std::numeric_limits<double>::infinity());
  json.EndArray();
  EXPECT_EQ(json.Finish(), "[null,null,null]");
}

TEST(JsonWriter, BufferExposesPartialDocument) {
  JsonWriter json;
  json.BeginObject();
  json.Field("k", std::uint64_t{1});
  EXPECT_EQ(json.buffer(), R"({"k":1)");
}

}  // namespace
}  // namespace graphsd::obs
