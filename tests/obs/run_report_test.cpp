#include "obs/run_report.hpp"

#include <string>

#include <gtest/gtest.h>

#include "io/file.hpp"
#include "testing_util.hpp"

namespace graphsd::obs {
namespace {

using testing::TempDir;

core::ExecutionReport MakeReport() {
  core::ExecutionReport report;
  report.engine = "graphsd";
  report.algorithm = "sssp";
  report.dataset = "toy \"quoted\"";
  report.iterations = 5;
  report.rounds = 3;
  report.degraded_rounds = 1;
  report.compute_seconds = 0.25;
  report.io_seconds = 1.5;
  report.io.seq_read_bytes = 4096;
  report.io.rand_read_bytes = 512;
  report.buffer_hits = 3;
  report.buffer_misses = 1;
  report.buffer_bytes_saved = 768;

  core::RoundStat sciu;
  sciu.first_iteration = 0;
  sciu.model = core::RoundModel::kSciu;
  sciu.cost_on_demand = 0.4;
  sciu.cost_full = 0.9;
  sciu.seq_bytes = 1024;
  sciu.rand_bytes = 512;
  sciu.random_requests = 2;
  report.per_round.push_back(sciu);

  core::RoundStat fciu;
  fciu.first_iteration = 1;
  fciu.iterations_covered = 2;
  fciu.model = core::RoundModel::kFciu;
  report.per_round.push_back(fciu);

  report.codec = "varint-delta";
  report.frames_decoded = 7;
  report.compressed_bytes_read = 900;
  report.decoded_bytes = 2048;
  report.decode_seconds = 0.125;
  return report;
}

TEST(RunReport, DocumentCarriesScheduleInputsAndTotals) {
  const std::string json =
      ToRunReportJson(MakeReport(), io::IoCostModel::Hdd());
  EXPECT_NE(json.find(R"("schema_version":1)"), std::string::npos);
  EXPECT_NE(json.find(R"("engine":"graphsd")"), std::string::npos);
  // Strings pass through the escaper on the way out.
  EXPECT_NE(json.find(R"("dataset":"toy \"quoted\"")"), std::string::npos);
  EXPECT_NE(json.find(R"("iterations":5)"), std::string::npos);
  EXPECT_NE(json.find(R"("degraded_rounds":1)"), std::string::npos);
  // Per-round schedule decisions and their cost-model inputs.
  EXPECT_NE(json.find(R"("model":"S")"), std::string::npos);
  EXPECT_NE(json.find(R"("model":"F")"), std::string::npos);
  EXPECT_NE(json.find(R"("cost_on_demand":0.4)"), std::string::npos);
  EXPECT_NE(json.find(R"("seq_bytes":1024)"), std::string::npos);
  EXPECT_NE(json.find(R"("rand_bytes":512)"), std::string::npos);
  EXPECT_NE(json.find(R"("random_requests":2)"), std::string::npos);
  // The C_r/C_s inputs of the device the run was modeled on.
  EXPECT_NE(json.find(R"("cost_model":{"seq_read_bw":)"), std::string::npos);
  EXPECT_NE(json.find(R"("random_request_bytes":)"), std::string::npos);
  // hits / (hits + misses) with both recorded.
  EXPECT_NE(json.find(R"("hit_rate":0.75)"), std::string::npos);
  // Compressed-vs-decoded byte counters ride along in one section.
  EXPECT_NE(json.find(R"("compression":{"codec":"varint-delta")"),
            std::string::npos);
  EXPECT_NE(json.find(R"("frames_decoded":7)"), std::string::npos);
  EXPECT_NE(json.find(R"("compressed_bytes_read":900)"), std::string::npos);
  EXPECT_NE(json.find(R"("decoded_bytes":2048)"), std::string::npos);
  // No registry attached: the optional section is absent.
  EXPECT_EQ(json.find(R"("metrics")"), std::string::npos);
}

TEST(RunReport, AttachedRegistryIsEmbedded) {
  MetricsRegistry metrics;
  metrics.GetCounter("engine.runs").Add(1);
  const std::string json =
      ToRunReportJson(MakeReport(), io::IoCostModel::Hdd(), &metrics);
  EXPECT_NE(json.find(R"("metrics":{"counters":{"engine.runs":1})"),
            std::string::npos);
}

TEST(RunReport, EmptyReportStillRenders) {
  const std::string json =
      ToRunReportJson(core::ExecutionReport{}, io::IoCostModel::Hdd());
  EXPECT_NE(json.find(R"("per_round":[])"), std::string::npos);
  EXPECT_NE(json.find(R"("hit_rate":0)"), std::string::npos);
}

TEST(RunReport, ZeroBandwidthSentinelYieldsFiniteNumbersOnly) {
  // IoCostModel::Free() sets every bandwidth to the 0.0 "free" sentinel.
  // Every derived rate in the document must degrade to 0, never to a
  // division-by-zero NaN/Inf (which JsonWriter would have to null out,
  // breaking numeric consumers of --report-json).
  for (const auto& model :
       {io::IoCostModel::Free(), io::IoCostModel::Ssd()}) {
    const std::string json = ToRunReportJson(MakeReport(), model);
    EXPECT_EQ(json.find("nan"), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
    EXPECT_EQ(json.find("null"), std::string::npos);
  }
  const std::string free_json =
      ToRunReportJson(MakeReport(), io::IoCostModel::Free());
  EXPECT_NE(free_json.find(R"("random_read_bw":0)"), std::string::npos);
}

TEST(RunReport, WritesDocumentToDisk) {
  TempDir dir;
  const std::string path = dir.Sub("report.json");
  ASSERT_OK(WriteRunReport(MakeReport(), io::IoCostModel::Hdd(), path));
  EXPECT_TRUE(io::PathExists(path));
}

TEST(RunReport, WriteToUncreatablePathFails) {
  const Status status = WriteRunReport(
      MakeReport(), io::IoCostModel::Hdd(), "/nonexistent_dir/report.json");
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace graphsd::obs
