#include "obs/trace.hpp"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace graphsd::obs {
namespace {

TEST(Trace, NullBufferSpanIsANoOp) {
  // The disabled path must be safe without any buffer at all.
  TraceSpan span(nullptr, "compute", 3);
}

TEST(Trace, SpanRecordsIntoBuffer) {
  TraceBuffer buffer;
  {
    TraceSpan span(&buffer, "edge-read", 2);
  }
  {
    TraceSpan span(&buffer, "compute", 2);
  }
  const std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "edge-read");
  EXPECT_STREQ(events[1].name, "compute");
  EXPECT_EQ(events[0].iteration, 2u);
  EXPECT_GE(events[0].duration_us, 0.0);
  // Spans from one thread share one dense tid and appear in append order.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_LE(events[0].start_us, events[1].start_us);
  EXPECT_EQ(buffer.event_count(), 2u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(Trace, AppendsPastCapAreCountedNotStored) {
  TraceBuffer buffer(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span(&buffer, "compute", 0);
  }
  EXPECT_EQ(buffer.event_count(), 2u);
  EXPECT_EQ(buffer.dropped(), 3u);
}

TEST(Trace, ThreadsGetDenseDistinctTids) {
  TraceBuffer buffer;
  buffer.Record("main", 0, 0.0, 1.0);
  std::thread other([&buffer] { buffer.Record("worker", 0, 1.0, 1.0); });
  other.join();
  const std::vector<TraceEvent> events = buffer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].tid, 0u);
  EXPECT_EQ(events[1].tid, 1u);
}

TEST(Trace, ConcurrentRecordsAllLand) {
  TraceBuffer buffer;
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&buffer] {
      for (int i = 0; i < kSpans; ++i) {
        TraceSpan span(&buffer, "compute", static_cast<std::uint32_t>(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(buffer.event_count(),
            static_cast<std::size_t>(kThreads) * kSpans);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(Trace, ChromeJsonHasCompleteEventsAndDropCount) {
  TraceBuffer buffer(/*max_events=*/1);
  buffer.Record("schedule-decision", 4, 10.0, 2.5);
  buffer.Record("overflow", 4, 12.5, 1.0);  // dropped
  const std::string json = ToChromeTraceJson(buffer);
  EXPECT_NE(json.find(R"("traceEvents":[)"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"schedule-decision")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("cat":"graphsd")"), std::string::npos);
  EXPECT_NE(json.find(R"("iteration":4)"), std::string::npos);
  EXPECT_NE(json.find(R"("droppedEvents":1)"), std::string::npos);
  EXPECT_EQ(json.find("overflow"), std::string::npos);
}

TEST(Trace, EmptyBufferStillExportsValidDocument) {
  TraceBuffer buffer;
  const std::string json = ToChromeTraceJson(buffer);
  EXPECT_NE(json.find(R"("traceEvents":[])"), std::string::npos);
  EXPECT_NE(json.find(R"("droppedEvents":0)"), std::string::npos);
}

}  // namespace
}  // namespace graphsd::obs
