#include "obs/metrics.hpp"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json_writer.hpp"

namespace graphsd::obs {
namespace {

TEST(Metrics, CounterAccumulates) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("engine.runs");
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Metrics, GaugeKeepsLastWrite) {
  MetricsRegistry registry;
  Gauge& g = registry.GetGauge("buffer.used_bytes");
  EXPECT_EQ(g.value(), 0.0);
  g.Set(128.0);
  g.Set(64.0);
  EXPECT_EQ(g.value(), 64.0);
}

TEST(Metrics, HistogramBucketsValues) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("engine.round_read_bytes");
  h.Record(1);
  h.Record(1);
  h.Record(1024);
  const Log2Histogram snapshot = h.Snapshot();
  EXPECT_EQ(snapshot.TotalCount(), 3u);
}

TEST(Metrics, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Metrics, HandlesStayStableAcrossInsertions) {
  MetricsRegistry registry;
  Counter& first = registry.GetCounter("aaa");
  Gauge& gauge = registry.GetGauge("bbb");
  // Flood the registry; the node-based map must not move earlier handles.
  for (int i = 0; i < 256; ++i) {
    registry.GetCounter("c" + std::to_string(i)).Add(1);
  }
  first.Add(7);
  gauge.Set(3.5);
  EXPECT_EQ(registry.GetCounter("aaa").value(), 7u);
  EXPECT_EQ(registry.GetGauge("bbb").value(), 3.5);
  EXPECT_EQ(registry.size(), 258u);
}

TEST(Metrics, CounterIsThreadSafe) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("shared");
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.Add(1);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsDeathTest, ReusingNameForDifferentKindAborts) {
  MetricsRegistry registry;
  registry.GetCounter("engine.rounds");
  EXPECT_DEATH(registry.GetGauge("engine.rounds"), "engine.rounds");
  EXPECT_DEATH(registry.GetHistogram("engine.rounds"), "engine.rounds");
}

TEST(Metrics, WriteJsonIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("z.count").Add(3);
  registry.GetCounter("a.count").Add(1);
  registry.GetGauge("m.level").Set(0.5);
  registry.GetHistogram("h.sizes").Record(8);
  JsonWriter json;
  registry.WriteJson(json);
  const std::string out = json.Finish();
  // Counters render name-sorted regardless of registration order.
  EXPECT_NE(out.find(R"("counters":{"a.count":1,"z.count":3})"),
            std::string::npos);
  EXPECT_NE(out.find(R"("m.level":0.5)"), std::string::npos);
  EXPECT_NE(out.find(R"("h.sizes":{"count":1,"buckets":)"), std::string::npos);
}

TEST(Metrics, EmptyRegistryStillWritesValidShape) {
  MetricsRegistry registry;
  JsonWriter json;
  registry.WriteJson(json);
  EXPECT_EQ(json.Finish(),
            R"({"counters":{},"gauges":{},"histograms":{}})");
}

}  // namespace
}  // namespace graphsd::obs
