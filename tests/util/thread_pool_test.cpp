#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <future>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace graphsd {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), 37, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, 10, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleThreadRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.ParallelFor(0, 10, 100,
                   [&](std::size_t, std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, ParallelForGrainLargerThanRangeRunsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::size_t seen_begin = 99, seen_end = 0;
  pool.ParallelFor(3, 10, 1000, [&](std::size_t b, std::size_t e) {
    calls.fetch_add(1);
    seen_begin = b;
    seen_end = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 3u);
  EXPECT_EQ(seen_end, 10u);
}

TEST(ThreadPool, ParallelForZeroGrainTreatedAsOne) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(0, hits.size(), 0, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForInvertedRangeIsEmpty) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(10, 5, 4, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

// Property sweep: every (range length, grain, offset) combination must
// partition [begin, end) into contiguous, ordered, exactly-once chunks of
// at most `grain` items each.
TEST(ThreadPool, ParallelForPartitionProperty) {
  ThreadPool pool(4);
  for (std::size_t total : {1u, 2u, 3u, 7u, 8u, 63u, 64u, 65u, 1000u}) {
    for (std::size_t grain : {1u, 2u, 3u, 5u, 8u, 63u, 64u, 65u, 4096u}) {
      for (std::size_t begin : {0u, 1u, 17u}) {
        const std::size_t end = begin + total;
        std::mutex m;
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        pool.ParallelFor(begin, end, grain, [&](std::size_t b, std::size_t e) {
          ASSERT_LT(b, e);
          ASSERT_LE(e - b, std::max<std::size_t>(1, grain));
          std::lock_guard<std::mutex> lock(m);
          chunks.emplace_back(b, e);
        });
        std::sort(chunks.begin(), chunks.end());
        ASSERT_FALSE(chunks.empty());
        EXPECT_EQ(chunks.front().first, begin);
        EXPECT_EQ(chunks.back().second, end);
        for (std::size_t i = 1; i < chunks.size(); ++i) {
          // Contiguous and non-overlapping: each chunk starts where the
          // previous one ended.
          EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
        }
      }
    }
  }
}

// Regression: the chunk cursor used to advance by raw offsets, so a range
// ending near SIZE_MAX wrapped the cursor around zero once helpers raced
// past the end — re-claiming (and re-executing) chunks, some of them outside
// the requested range entirely.
TEST(ThreadPool, ParallelForRangeEndingAtSizeMax) {
  ThreadPool pool(4);
  const std::size_t kMax = std::numeric_limits<std::size_t>::max();
  const std::size_t begin = kMax - 1000;
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.ParallelFor(begin, kMax, 7, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(m);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, begin);
  EXPECT_EQ(chunks.back().second, kMax);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
  }
}

// Regression: `(total + grain - 1) / grain` overflowed for ranges spanning
// nearly the whole size_t space, producing a zero chunk count.
TEST(ThreadPool, ParallelForHugeRangeHugeGrain) {
  ThreadPool pool(2);
  const std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::atomic<int> calls{0};
  std::size_t seen_begin = 1, seen_end = 0;
  // total = kMax, grain = kMax / 2 + 1 -> two chunks on the threaded path
  // would overflow the old rounding; with total <= grain it must still run
  // the whole range in one inline call.
  pool.ParallelFor(0, kMax, kMax, [&](std::size_t b, std::size_t e) {
    calls.fetch_add(1);
    seen_begin = b;
    seen_end = e;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 0u);
  EXPECT_EQ(seen_end, kMax);
  // Threaded path: a grain of kMax/4 splits the same range into a handful
  // of chunks whose count the old rounding computed as zero.
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.ParallelFor(0, kMax, kMax / 4, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lock(m);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 5u);
  EXPECT_EQ(chunks.front().first, 0u);
  EXPECT_EQ(chunks.back().second, kMax);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
  }
}

TEST(ThreadPool, ParallelForSumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> data(10000);
  std::iota(data.begin(), data.end(), 1);
  std::atomic<std::uint64_t> sum{0};
  pool.ParallelFor(0, data.size(), 128, [&](std::size_t b, std::size_t e) {
    std::uint64_t local = 0;
    for (std::size_t i = b; i < e; ++i) local += data[i];
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 10000ull * 10001 / 2);
}

TEST(ThreadPool, ReusableAcrossManyParallelFors) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(0, 64, 8, [&](std::size_t b, std::size_t e) {
      total.fetch_add(static_cast<int>(e - b));
    });
  }
  EXPECT_EQ(total.load(), 50 * 64);
}

TEST(ThreadPool, ZeroThreadRequestDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPool, ExceptionDoesNotKillWorkersOrLaterBatches) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool stays usable: the worker survived and the exception slot is
  // cleared once consumed.
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();  // must not rethrow again
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, FirstExceptionWinsAndLaterOnesAreDropped) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("one of many"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  pool.Wait();  // the batch is drained; nothing left to rethrow
}

TEST(ThreadPool, WaitDrainsAllTasksBeforeRethrowing) {
  // The rethrow must not leave tasks of the same batch still running.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  pool.Submit([] { throw std::runtime_error("early failure"); });
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&completed] { completed.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPool, ParallelForRethrowsChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 1024, 8,
                                [](std::size_t b, std::size_t) {
                                  if (b == 512) {
                                    throw std::runtime_error("chunk failed");
                                  }
                                }),
               std::runtime_error);
  // Later ParallelFor batches are unaffected.
  std::atomic<int> total{0};
  pool.ParallelFor(0, 64, 8, [&](std::size_t b, std::size_t e) {
    total.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ParallelForDoesNotStealSubmitException) {
  // Regression: ParallelFor used to share the pool-wide exception slot, so
  // it could swallow a concurrent Submit() task's exception and leave the
  // later Wait() reporting success.
  ThreadPool pool(4);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.Submit([gate] {
    gate.wait();
    throw std::runtime_error("submit failed");
  });
  std::atomic<int> total{0};
  pool.ParallelFor(0, 256, 8, [&](std::size_t b, std::size_t e) {
    total.fetch_add(static_cast<int>(e - b));
  });  // must not rethrow — its own chunks all succeeded
  EXPECT_EQ(total.load(), 256);
  release.set_value();
  // The Submit task's failure still belongs to Wait().
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPool, ParallelForExceptionNotDeliveredToLaterWait) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 256, 8,
                                [](std::size_t b, std::size_t) {
                                  if (b == 128) {
                                    throw std::runtime_error("chunk failed");
                                  }
                                }),
               std::runtime_error);
  pool.Wait();  // the chunk exception was consumed by ParallelFor itself
}

TEST(ThreadPool, ParallelForCompletesWhileSubmitTaskStillRuns) {
  // Batch-scoped completion: ParallelFor waits on its own chunks only, not
  // on unrelated queued work.
  ThreadPool pool(4);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<bool> submit_done{false};
  pool.Submit([gate, &submit_done] {
    gate.wait();
    submit_done.store(true);
  });
  std::atomic<int> total{0};
  pool.ParallelFor(0, 512, 16, [&](std::size_t b, std::size_t e) {
    total.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(total.load(), 512);
  EXPECT_FALSE(submit_done.load());  // the blocked task was not waited on
  release.set_value();
  pool.Wait();
  EXPECT_TRUE(submit_done.load());
}

TEST(ThreadPool, InterleavedParallelForsKeepExceptionsSeparate) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ok{0};
    pool.Submit([&ok] { ok.fetch_add(1); });
    EXPECT_THROW(pool.ParallelFor(0, 64, 4,
                                  [](std::size_t b, std::size_t) {
                                    if (b == 32) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
                 std::runtime_error);
    pool.Wait();  // only the healthy Submit task: no rethrow
    EXPECT_EQ(ok.load(), 1);
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Regression: a ParallelFor issued from inside a pool worker used to
  // block on chunks queued behind workers that were themselves blocked in
  // ParallelFor — at pool size 2 the inner calls starved each other. The
  // caller now claims and runs its own batch's chunks while waiting.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(0, 8, 1, [&](std::size_t, std::size_t) {
    pool.ParallelFor(0, 8, 1, [&](std::size_t b, std::size_t e) {
      inner_total.fetch_add(static_cast<int>(e - b));
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 8);
}

TEST(ThreadPool, ParallelForFromSubmittedTaskDoesNotDeadlock) {
  // Every worker occupied by a Submit task that itself calls ParallelFor:
  // no free worker ever picks the nested chunks up, so the nested callers
  // must drain them inline.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      pool.ParallelFor(0, 32, 1, [&](std::size_t b, std::size_t e) {
        total.fetch_add(static_cast<int>(e - b));
      });
    });
  }
  pool.Wait();
  EXPECT_EQ(total.load(), 4 * 32);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerException) {
  ThreadPool pool(2);
  std::atomic<int> outer_failures{0};
  pool.ParallelFor(0, 4, 1, [&](std::size_t, std::size_t) {
    try {
      pool.ParallelFor(0, 4, 1, [](std::size_t b, std::size_t) {
        if (b == 2) throw std::runtime_error("inner chunk failed");
      });
    } catch (const std::runtime_error&) {
      outer_failures.fetch_add(1);
    }
  });
  EXPECT_EQ(outer_failures.load(), 4);
  pool.Wait();  // nested exceptions were all consumed by their own batches
}

TEST(ThreadPool, SingleWorkerParallelForPropagatesInlineException) {
  // With one worker ParallelFor runs inline; the exception must surface the
  // same way it does on the threaded path.
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 16, 4,
                                [](std::size_t, std::size_t) {
                                  throw std::runtime_error("inline failure");
                                }),
               std::runtime_error);
}

}  // namespace
}  // namespace graphsd
