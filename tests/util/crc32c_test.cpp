#include "util/crc32c.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace graphsd {
namespace {

std::uint32_t CrcOf(const std::string& s) {
  return Crc32c(0, s.data(), s.size());
}

TEST(Crc32c, MatchesRfc3720CheckVector) {
  // The canonical CRC32C (Castagnoli) check value, e.g. RFC 3720 §B.4.
  EXPECT_EQ(CrcOf("123456789"), 0xE3069283u);
}

TEST(Crc32c, EmptyInputIsZero) {
  EXPECT_EQ(CrcOf(""), 0u);
  EXPECT_EQ(Crc32c(std::span<const std::uint8_t>{}), 0u);
}

TEST(Crc32c, IncrementalEqualsOneShot) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = CrcOf(text);
  for (std::size_t split = 0; split <= text.size(); split += 7) {
    std::uint32_t crc = Crc32c(0, text.data(), split);
    crc = Crc32c(crc, text.data() + split, text.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, SpanOverloadMatchesPointerOverload) {
  const std::vector<std::uint8_t> data = {0x00, 0xFF, 0x42, 0x13, 0x37};
  EXPECT_EQ(Crc32c(std::span<const std::uint8_t>(data)),
            Crc32c(0, data.data(), data.size()));
}

TEST(Crc32c, DetectsSingleBitFlips) {
  // Every single-bit corruption of a small payload must change the CRC —
  // this is the property the dataset verifier relies on.
  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  const std::uint32_t clean = Crc32c(std::span<const std::uint8_t>(data));
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(Crc32c(std::span<const std::uint8_t>(data)), clean)
          << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

TEST(Crc32c, DetectsSwappedBlocks) {
  // CRCs of concatenations must be order-sensitive.
  EXPECT_NE(CrcOf("abcdef"), CrcOf("defabc"));
}

}  // namespace
}  // namespace graphsd
