#include "util/bitset.hpp"

#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace graphsd {
namespace {

TEST(ConcurrentBitset, StartsEmpty) {
  ConcurrentBitset bits(100);
  EXPECT_EQ(bits.size(), 100u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(ConcurrentBitset, SetTestClear) {
  ConcurrentBitset bits(130);  // spans three words
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Clear(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(ConcurrentBitset, TestAndSetReportsFirstSetter) {
  ConcurrentBitset bits(10);
  EXPECT_TRUE(bits.TestAndSet(3));
  EXPECT_FALSE(bits.TestAndSet(3));
  EXPECT_TRUE(bits.Test(3));
}

TEST(ConcurrentBitset, SetAllRespectsSize) {
  ConcurrentBitset bits(70);  // non-multiple of 64
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
  bits.ClearAll();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(ConcurrentBitset, SetAllExactWordBoundary) {
  ConcurrentBitset bits(128);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 128u);
}

TEST(ConcurrentBitset, ForEachSetVisitsAscending) {
  ConcurrentBitset bits(200);
  const std::vector<std::size_t> expected = {0, 5, 63, 64, 65, 128, 199};
  for (auto i : expected) bits.Set(i);
  std::vector<std::size_t> seen;
  bits.ForEachSet([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(ConcurrentBitset, ForEachSetInRangeClipsBothEnds) {
  ConcurrentBitset bits(256);
  for (std::size_t i = 0; i < 256; i += 3) bits.Set(i);
  std::vector<std::size_t> seen;
  bits.ForEachSetInRange(10, 70, [&](std::size_t i) { seen.push_back(i); });
  for (auto i : seen) {
    EXPECT_GE(i, 10u);
    EXPECT_LT(i, 70u);
    EXPECT_EQ(i % 3, 0u);
  }
  EXPECT_EQ(seen.size(), bits.CountInRange(10, 70));
}

TEST(ConcurrentBitset, RangeWithinSingleWord) {
  ConcurrentBitset bits(64);
  bits.Set(5);
  bits.Set(9);
  bits.Set(20);
  std::vector<std::size_t> seen;
  bits.ForEachSetInRange(6, 20, [&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, std::vector<std::size_t>{9});
}

TEST(ConcurrentBitset, EmptyAndDegenerateRanges) {
  ConcurrentBitset bits(64);
  bits.SetAll();
  EXPECT_EQ(bits.CountInRange(10, 10), 0u);
  EXPECT_EQ(bits.CountInRange(20, 10), 0u);
  EXPECT_EQ(bits.CountInRange(60, 500), 4u);  // clipped to size
}

TEST(ConcurrentBitset, CopyFromAndSwap) {
  ConcurrentBitset a(100);
  ConcurrentBitset b(100);
  a.Set(1);
  a.Set(99);
  b.CopyFrom(a);
  EXPECT_TRUE(b.Test(1));
  EXPECT_TRUE(b.Test(99));
  b.ClearAll();
  b.Set(50);
  a.Swap(b);
  EXPECT_TRUE(a.Test(50));
  EXPECT_FALSE(a.Test(1));
  EXPECT_TRUE(b.Test(1));
}

TEST(ConcurrentBitset, ConcurrentTestAndSetElectsOneWinnerPerBit) {
  constexpr std::size_t kBits = 4096;
  ConcurrentBitset bits(kBits);
  std::atomic<std::size_t> wins{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kBits; ++i) {
        if (bits.TestAndSet(i)) wins.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wins.load(), kBits);
  EXPECT_EQ(bits.Count(), kBits);
}

TEST(ConcurrentBitsetProperty, CountMatchesReferenceSet) {
  Xoshiro256 rng(7);
  for (int round = 0; round < 20; ++round) {
    const std::size_t size = 1 + rng.NextBounded(500);
    ConcurrentBitset bits(size);
    std::set<std::size_t> reference;
    for (int op = 0; op < 200; ++op) {
      const std::size_t i = rng.NextBounded(size);
      if (rng.NextBounded(3) == 0) {
        bits.Clear(i);
        reference.erase(i);
      } else {
        bits.Set(i);
        reference.insert(i);
      }
    }
    EXPECT_EQ(bits.Count(), reference.size());
    std::vector<std::size_t> seen;
    bits.ForEachSet([&](std::size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, std::vector<std::size_t>(reference.begin(), reference.end()));
  }
}

}  // namespace
}  // namespace graphsd
