#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace graphsd {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }  // restore
};

TEST_F(LoggingTest, LevelRoundTrips) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                               LogLevel::kWarning, LogLevel::kError,
                               LogLevel::kOff}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, MacrosCompileAndRunAtEveryLevel) {
  // Smoke: exercising every macro at every threshold must not crash; the
  // filtered-out paths are the interesting branch.
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kError,
                               LogLevel::kOff}) {
    SetLogLevel(level);
    GRAPHSD_LOG_DEBUG("debug %d", 1);
    GRAPHSD_LOG_INFO("info %s", "x");
    GRAPHSD_LOG_WARN("warn %f", 0.5);
    GRAPHSD_LOG_ERROR("error %u", 7u);
  }
}

TEST_F(LoggingTest, OffSuppressesEverything) {
  SetLogLevel(LogLevel::kOff);
  // kOff must be above every emit level.
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kOff));
}

TEST_F(LoggingTest, OversizedMessagesAreTruncatedSafely) {
  SetLogLevel(LogLevel::kError);
  const std::string huge(5000, 'x');
  GRAPHSD_LOG_ERROR("%s", huge.c_str());  // must not overflow
}

}  // namespace
}  // namespace graphsd
