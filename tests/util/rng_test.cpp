#include "util/rng.hpp"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace graphsd {
namespace {

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, NextBoundedStaysInBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBoundedOneIsAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Xoshiro256, BoundedRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  // Each bucket should get ~10000; allow 10% slop.
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Xoshiro256, NextFloatRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.NextFloat(1.0f, 10.0f);
    EXPECT_GE(f, 1.0f);
    EXPECT_LT(f, 10.0f);
  }
}

}  // namespace
}  // namespace graphsd
