#include "util/status.hpp"

#include <cerrno>

#include <gtest/gtest.h>

namespace graphsd {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(Status, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(CorruptDataError("x").code(), StatusCode::kCorruptData);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(Status, WithContextPrefixes) {
  Status s = NotFoundError("no such block").WithContext("sub-block (3,4)");
  EXPECT_EQ(s.message(), "sub-block (3,4): no such block");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(Status, WithContextIsNoOpOnOk) {
  Status s = Status::Ok().WithContext("context");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(Status, ErrnoErrorMentionsStrerror) {
  Status s = ErrnoError("open /nope", ENOENT);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("open /nope"), std::string::npos);
  EXPECT_NE(s.message().find("No such file"), std::string::npos);
}

TEST(Status, ErrnoErrorMapsFailureClasses) {
  // The retry policy keys off these codes: kIoError is transient
  // (retryable), the others fail fast.
  EXPECT_EQ(ErrnoError("write /f", ENOSPC).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ErrnoError("write /f", EDQUOT).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ErrnoError("read /f", EIO).code(), StatusCode::kIoError);
  EXPECT_EQ(ErrnoError("read /f", EINTR).code(), StatusCode::kIoError);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(NotFoundError("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailingFn() { return IoError("boom"); }

Status Propagating() {
  GRAPHSD_RETURN_IF_ERROR(FailingFn());
  ADD_FAILURE() << "should not reach";
  return Status::Ok();
}

TEST(StatusMacros, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagating().code(), StatusCode::kIoError);
}

Result<int> MakeInt(bool ok) {
  if (ok) return 5;
  return InvalidArgumentError("nope");
}

Result<int> Doubled(bool ok) {
  GRAPHSD_ASSIGN_OR_RETURN(const int v, MakeInt(ok));
  return v * 2;
}

TEST(StatusMacros, AssignOrReturnHappyPath) {
  EXPECT_EQ(Doubled(true).value(), 10);
}

TEST(StatusMacros, AssignOrReturnErrorPath) {
  EXPECT_EQ(Doubled(false).status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacros, AssignOrReturnTwiceInOneScope) {
  auto fn = []() -> Result<int> {
    GRAPHSD_ASSIGN_OR_RETURN(const int a, MakeInt(true));
    GRAPHSD_ASSIGN_OR_RETURN(const int b, MakeInt(true));
    return a + b;
  };
  EXPECT_EQ(fn().value(), 10);
}

}  // namespace
}  // namespace graphsd
