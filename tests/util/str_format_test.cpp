#include "util/str_format.hpp"

#include <string>

#include <gtest/gtest.h>

namespace graphsd {
namespace {

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(StrPrintf("plain"), "plain");
  EXPECT_EQ(StrPrintf("%s=%d (%.2f)", "k", 7, 1.5), "k=7 (1.50)");
  EXPECT_EQ(StrPrintf("%llu", 18446744073709551615ull),
            "18446744073709551615");
}

TEST(StrFormat, EmptyResult) { EXPECT_EQ(StrPrintf("%s", ""), ""); }

TEST(StrFormat, NoTruncationPastFixedBufferSizes) {
  // The snprintf idiom this replaced used 256-byte stack buffers; make sure
  // arbitrarily long fields come back whole.
  const std::string long_field(10000, 'x');
  const std::string out = StrPrintf("name=%s!", long_field.c_str());
  EXPECT_EQ(out.size(), long_field.size() + 6);
  EXPECT_EQ(out, "name=" + long_field + "!");
}

TEST(StrFormat, AppendKeepsExistingContent) {
  std::string out = "head:";
  StrAppendf(&out, " %s", "tail");
  StrAppendf(&out, " %d", 3);
  EXPECT_EQ(out, "head: tail 3");
}

TEST(StrFormat, AppendLongContent) {
  const std::string big(4096, 'y');
  std::string out = "x";
  StrAppendf(&out, "%s", big.c_str());
  EXPECT_EQ(out.size(), 1 + big.size());
}

}  // namespace
}  // namespace graphsd
