#include "util/clock.hpp"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace graphsd {
namespace {

TEST(WallTimer, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.Seconds(), 0.015);
  EXPECT_GE(timer.Millis(), 15.0);
}

TEST(WallTimer, RestartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Restart();
  EXPECT_LT(timer.Seconds(), 0.015);
}

TEST(VirtualClock, AccumulatesExactly) {
  VirtualClock clock;
  clock.Add(1.5);
  clock.Add(0.25);
  EXPECT_NEAR(clock.Seconds(), 1.75, 1e-9);
}

TEST(VirtualClock, IgnoresNonPositive) {
  VirtualClock clock;
  clock.Add(0.0);
  clock.Add(-5.0);
  EXPECT_EQ(clock.Seconds(), 0.0);
}

TEST(VirtualClock, ResetZeroes) {
  VirtualClock clock;
  clock.Add(3.0);
  clock.Reset();
  EXPECT_EQ(clock.Seconds(), 0.0);
}

TEST(VirtualClock, ConcurrentAddsAreExact) {
  VirtualClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) clock.Add(0.001);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_NEAR(clock.Seconds(), 4.0, 1e-6);
}

TEST(ScopedWallAccumulator, AddsScopeTime) {
  double sink = 0;
  {
    ScopedWallAccumulator acc(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(sink, 0.008);
  const double first = sink;
  {
    ScopedWallAccumulator acc(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(sink, first + 0.008);  // accumulates, not overwrites
}

}  // namespace
}  // namespace graphsd
