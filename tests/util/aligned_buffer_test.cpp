#include "util/aligned_buffer.hpp"

#include <cstring>

#include <gtest/gtest.h>

namespace graphsd {
namespace {

TEST(AlignUp, PowerOfTwoMath) {
  EXPECT_EQ(AlignUp(0, 4096), 0u);
  EXPECT_EQ(AlignUp(1, 4096), 4096u);
  EXPECT_EQ(AlignUp(4096, 4096), 4096u);
  EXPECT_EQ(AlignUp(4097, 4096), 8192u);
  EXPECT_EQ(AlignDown(4097, 4096), 4096u);
  EXPECT_EQ(AlignDown(4095, 4096), 0u);
}

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.data(), nullptr);
}

TEST(AlignedBuffer, AllocatesAligned) {
  AlignedBuffer buffer(100);
  EXPECT_EQ(buffer.size(), 100u);
  EXPECT_GE(buffer.capacity(), 100u);
  EXPECT_EQ(buffer.capacity() % kDirectIoAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) %
                kDirectIoAlignment,
            0u);
}

TEST(AlignedBuffer, ZeroSizeStillGetsUsableCapacity) {
  AlignedBuffer buffer(0);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_GE(buffer.capacity(), kDirectIoAlignment);
  EXPECT_NE(buffer.data(), nullptr);
}

TEST(AlignedBuffer, ReserveGrowsAndKeepsAlignment) {
  AlignedBuffer buffer(16);
  buffer.Reserve(100000);
  EXPECT_EQ(buffer.size(), 100000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) %
                kDirectIoAlignment,
            0u);
}

TEST(AlignedBuffer, ReserveShrinkOnlyChangesLogicalSize) {
  AlignedBuffer buffer(8192);
  const auto* p = buffer.data();
  buffer.Reserve(10);
  EXPECT_EQ(buffer.size(), 10u);
  EXPECT_EQ(buffer.data(), p);  // no reallocation when shrinking
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(64);
  std::memset(a.data(), 0xAB, 64);
  const auto* p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 64u);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.data()[0], 0xAB);

  AlignedBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
}

TEST(AlignedBuffer, SpanCoversLogicalSize) {
  AlignedBuffer buffer(33);
  EXPECT_EQ(buffer.span().size(), 33u);
}

}  // namespace
}  // namespace graphsd
