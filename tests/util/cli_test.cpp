#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace graphsd {
namespace {

CliFlags MakeFlags() {
  CliFlags flags;
  flags.Define("name", "default", "a string flag");
  flags.Define("count", "10", "an int flag");
  flags.Define("ratio", "0.5", "a double flag");
  flags.Define("verbose", "false", "a bool flag");
  return flags;
}

TEST(CliFlags, DefaultsApply) {
  CliFlags flags = MakeFlags();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetInt("count"), 10);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.5);
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(CliFlags, EqualsForm) {
  CliFlags flags = MakeFlags();
  const char* argv[] = {"prog", "--name=xyz", "--count=42"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(flags.GetString("name"), "xyz");
  EXPECT_EQ(flags.GetInt("count"), 42);
}

TEST(CliFlags, SpaceForm) {
  CliFlags flags = MakeFlags();
  const char* argv[] = {"prog", "--ratio", "0.25"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.25);
}

TEST(CliFlags, BareBooleanForm) {
  CliFlags flags = MakeFlags();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(CliFlags, BoolAcceptedSpellings) {
  for (const char* spelling : {"true", "1", "yes", "on"}) {
    CliFlags flags = MakeFlags();
    const std::string arg = std::string("--verbose=") + spelling;
    const char* argv[] = {"prog", arg.c_str()};
    ASSERT_TRUE(flags.Parse(2, argv).ok());
    EXPECT_TRUE(flags.GetBool("verbose")) << spelling;
  }
}

TEST(CliFlags, UnknownFlagIsError) {
  CliFlags flags = MakeFlags();
  const char* argv[] = {"prog", "--bogus=1"};
  const Status s = flags.Parse(2, argv);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("bogus"), std::string::npos);
}

TEST(CliFlags, PositionalArgumentsCollected) {
  CliFlags flags = MakeFlags();
  const char* argv[] = {"prog", "input.txt", "--count=3", "output.txt"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "output.txt");
}

TEST(CliFlags, HelpMentionsEveryFlag) {
  CliFlags flags = MakeFlags();
  const std::string help = flags.Help("prog");
  for (const char* name : {"name", "count", "ratio", "verbose"}) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace graphsd
