#include "util/checked_cast.hpp"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace graphsd {
namespace {

TEST(FitsIn, InRangeValues) {
  EXPECT_TRUE(FitsIn<std::uint32_t>(std::size_t{0}));
  EXPECT_TRUE(FitsIn<std::uint32_t>(std::size_t{0xFFFFFFFF}));
  EXPECT_TRUE(FitsIn<std::int32_t>(std::int64_t{-1}));
  EXPECT_TRUE(FitsIn<std::uint64_t>(std::uint32_t{7}));  // widening
  EXPECT_TRUE(FitsIn<std::int8_t>(127));
}

TEST(FitsIn, NarrowingOverflow) {
  EXPECT_FALSE(FitsIn<std::uint32_t>(std::uint64_t{1} << 32));
  EXPECT_FALSE(FitsIn<std::uint32_t>(std::numeric_limits<std::uint64_t>::max()));
  EXPECT_FALSE(FitsIn<std::int32_t>(std::int64_t{1} << 31));
  EXPECT_FALSE(FitsIn<std::int8_t>(128));
}

TEST(FitsIn, SignedToUnsignedRejectsNegatives) {
  EXPECT_FALSE(FitsIn<std::uint64_t>(std::int64_t{-1}));
  EXPECT_FALSE(FitsIn<std::uint32_t>(-1));
  EXPECT_TRUE(FitsIn<std::uint32_t>(std::int64_t{1}));
}

TEST(FitsIn, UnsignedToSignedRejectsSignFlips) {
  // Same-width (and sign-extending cross-width) modular round-trips are the
  // identity even though the value changes sign; FitsIn must still say no.
  EXPECT_FALSE(FitsIn<std::int64_t>(std::numeric_limits<std::uint64_t>::max()));
  EXPECT_FALSE(FitsIn<std::int64_t>(std::uint64_t{1} << 63));
  EXPECT_FALSE(FitsIn<std::int32_t>(std::numeric_limits<std::uint64_t>::max()));
  EXPECT_FALSE(FitsIn<std::int32_t>(std::uint32_t{0x80000000}));
  EXPECT_TRUE(FitsIn<std::int64_t>(std::uint64_t{1} << 62));
  EXPECT_TRUE(FitsIn<std::int32_t>(std::uint32_t{0x7FFFFFFF}));
}

TEST(CheckedCast, PassesValuesThroughUnchanged) {
  EXPECT_EQ(CheckedCast<std::uint32_t>(std::size_t{12345}), 12345u);
  EXPECT_EQ(CheckedCast<std::int32_t>(std::int64_t{-42}), -42);
  EXPECT_EQ(CheckedCast<std::uint64_t>(std::uint32_t{9}), 9u);
}

TEST(CheckedCast, IsUsableInConstantExpressions) {
  static_assert(CheckedCast<std::uint32_t>(std::uint64_t{17}) == 17u);
  static_assert(FitsIn<std::uint8_t>(255) && !FitsIn<std::uint8_t>(256));
}

TEST(CheckedCastDeathTest, AbortsOnOutOfRange) {
  EXPECT_DEATH(CheckedCast<std::uint32_t>(std::uint64_t{1} << 32),
               "narrowing out of range");
  EXPECT_DEATH(CheckedCast<std::uint32_t>(std::int64_t{-1}),
               "narrowing out of range");
}

}  // namespace
}  // namespace graphsd
