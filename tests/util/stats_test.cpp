#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace graphsd {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Log2Histogram, BucketBoundaries) {
  EXPECT_EQ(Log2Histogram::BucketFor(0), 0u);
  EXPECT_EQ(Log2Histogram::BucketFor(1), 1u);
  EXPECT_EQ(Log2Histogram::BucketFor(2), 2u);
  EXPECT_EQ(Log2Histogram::BucketFor(3), 2u);
  EXPECT_EQ(Log2Histogram::BucketFor(4), 3u);
  EXPECT_EQ(Log2Histogram::BucketFor(4095), 12u);
  EXPECT_EQ(Log2Histogram::BucketFor(4096), 13u);
}

TEST(Log2Histogram, CountsAndRendering) {
  Log2Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(5);
  h.Add(5);
  EXPECT_EQ(h.TotalCount(), 4u);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("[4, 8): 2"), std::string::npos);
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024ull * 1024), "3.00 MiB");
  EXPECT_EQ(FormatBytes(5ull * 1024 * 1024 * 1024), "5.00 GiB");
}

TEST(FormatSeconds, Units) {
  EXPECT_EQ(FormatSeconds(2.5), "2.50 s");
  EXPECT_EQ(FormatSeconds(0.0123), "12.30 ms");
  EXPECT_EQ(FormatSeconds(4.2e-5), "42.00 us");
}

}  // namespace
}  // namespace graphsd
