// Tests for the cooperative-cancellation primitive (util/cancellation.hpp):
// trip semantics, first-reason-wins, deadlines, parent chaining, and the
// Check() poll idiom.
#include "util/cancellation.hpp"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace graphsd {
namespace {

TEST(CancellationToken, StartsLive) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancellationToken, CancelTripsAndFirstReasonWins) {
  CancellationToken token;
  token.Cancel("first");
  token.Cancel("second");
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(token.reason(), "first");
}

TEST(CancellationToken, DefaultReason) {
  CancellationToken token;
  token.Cancel();
  EXPECT_STREQ(token.reason(), "cancelled");
}

TEST(CancellationToken, CheckReturnsCancelledError) {
  CancellationToken token;
  token.Cancel("test stop");
  const Status status = token.Check();
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_NE(status.message().find("test stop"), std::string::npos);
}

TEST(CancellationToken, DeadlineTripsAfterElapsing) {
  CancellationToken token;
  token.SetDeadline(0.005);
  // Deadlines are lazy: nothing fires until a poll observes the clock.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!token.cancelled() && std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(token.reason(), "deadline exceeded");
}

TEST(CancellationToken, NonPositiveDeadlineDisarms) {
  CancellationToken token;
  token.SetDeadline(0.001);
  token.SetDeadline(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationToken, ParentTripPropagates) {
  CancellationToken parent;
  CancellationToken child;
  child.set_parent(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.Cancel("parent stop");
  EXPECT_TRUE(child.cancelled());
  EXPECT_STREQ(child.reason(), "parent stop");
  // Propagation is one-way: the child never trips its parent.
  CancellationToken parent2;
  CancellationToken child2;
  child2.set_parent(&parent2);
  child2.Cancel("child stop");
  EXPECT_FALSE(parent2.cancelled());
  EXPECT_TRUE(child2.cancelled());
}

TEST(CancellationToken, ConcurrentCancelIsSafe) {
  CancellationToken token;
  std::thread other([&token] { token.Cancel("racer"); });
  token.Cancel("racer");
  other.join();
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(token.reason(), "racer");
}

}  // namespace
}  // namespace graphsd
