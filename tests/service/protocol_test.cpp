#include "service/protocol.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "service/json.hpp"

namespace graphsd::service {
namespace {

TEST(Protocol, ParsesRunRequest) {
  auto r = ParseRequest(
      R"({"id":7,"op":"run","dataset":"/d","algo":"sssp","root":42,)"
      R"("iterations":50,"epsilon":1e-8,"deadline_seconds":2.5,)"
      R"("values":true,"vertices":[1,2,3]})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->id, 7u);
  EXPECT_EQ(r->op, "run");
  EXPECT_EQ(r->dataset, "/d");
  EXPECT_EQ(r->algo, "sssp");
  EXPECT_EQ(r->root, 42u);
  EXPECT_EQ(r->iterations, 50u);
  EXPECT_DOUBLE_EQ(r->epsilon, 1e-8);
  EXPECT_DOUBLE_EQ(r->deadline_seconds, 2.5);
  EXPECT_TRUE(r->values);
  ASSERT_EQ(r->vertices.size(), 3u);
  EXPECT_EQ(r->vertices[1], 2u);
}

TEST(Protocol, ParsesBareOps) {
  EXPECT_TRUE(ParseRequest(R"({"op":"ping"})").ok());
  EXPECT_TRUE(ParseRequest(R"({"op":"stats"})").ok());
  EXPECT_TRUE(ParseRequest(R"({"op":"shutdown"})").ok());
}

TEST(Protocol, RejectsBadRequests) {
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[1,2]").ok());                  // not an object
  EXPECT_FALSE(ParseRequest(R"({"op":"fly"})").ok());        // unknown op
  EXPECT_FALSE(ParseRequest(R"({"op":"run"})").ok());        // no dataset
  EXPECT_FALSE(ParseRequest(R"({"op":"info"})").ok());       // no dataset
  EXPECT_FALSE(
      ParseRequest(R"({"op":"run","dataset":"/d","algo":"nope"})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"op":"run","dataset":"/d","algo":"bfs","epsilon":0})")
          .ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"run","dataset":"/d","algo":"bfs",)"
                            R"("deadline_seconds":-1})")
                   .ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"run","dataset":"/d","algo":"bfs",)"
                            R"("vertices":["a"]})")
                   .ok());
}

TEST(Protocol, ErrorAndAckEnvelopesAreValidJson) {
  const std::string err =
      BuildErrorResponse(9, InvalidArgumentError("bad \"thing\""));
  auto parsed = ParseJson(err);
  ASSERT_TRUE(parsed.ok()) << err;
  EXPECT_EQ(parsed->GetUint("id"), 9u);
  EXPECT_FALSE(parsed->GetBool("ok", true));
  ASSERT_NE(parsed->Find("error"), nullptr);
  EXPECT_EQ(parsed->Find("error")->GetString("code"), "InvalidArgument");

  auto ack = ParseJson(BuildAckResponse(3, "ping"));
  ASSERT_TRUE(ack.ok());
  EXPECT_TRUE(ack->GetBool("ok"));
  EXPECT_EQ(ack->GetString("op"), "ping");
  EXPECT_EQ(ack->GetUint("protocol"), kProtocolVersion);
}

TEST(Protocol, HexDoubleRoundTripsExactly) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          1.0 / 3.0,
                          -6.02e23,
                          5e-324,  // smallest denormal
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity()};
  for (const double value : cases) {
    auto back = ParseHexDouble(HexDouble(value));
    ASSERT_TRUE(back.ok()) << HexDouble(value);
    // Bit-identical, including the sign of zero.
    EXPECT_EQ(std::signbit(*back), std::signbit(value));
    EXPECT_TRUE(*back == value || (std::isnan(*back) && std::isnan(value)))
        << HexDouble(value);
  }
  auto nan = ParseHexDouble(HexDouble(std::nan("")));
  ASSERT_TRUE(nan.ok());
  EXPECT_TRUE(std::isnan(*nan));
  EXPECT_FALSE(ParseHexDouble("zebra").ok());
}

}  // namespace
}  // namespace graphsd::service
