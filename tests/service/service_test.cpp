// End-to-end query-service tests: an in-process QueryServer on a temp unix
// socket, driven by real ServiceClient connections from concurrent threads.
//
// The differential test is the service-level acceptance gate: K identical +
// K distinct queries answered by the daemon (shared buffer tier, batching
// on) must be bit-identical to solo one-shot engine runs — the hex-float
// value encoding makes "bit-identical" literal string equality.
#include "service/server.hpp"

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "algos/personalized_pagerank.hpp"
#include "algos/sssp.hpp"
#include "core/cancellation.hpp"
#include "core/engine.hpp"
#include "engine/engine_test_util.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

namespace graphsd::testing {
namespace {

using service::JsonValue;
using service::ParseJson;
using service::QueryServer;
using service::ServerOptions;
using service::ServiceClient;

constexpr double kRecvTimeout = 120.0;

/// Builds one dataset and returns its directory (kept alive by `td`).
struct ServiceFixture {
  TempDir tmp;
  TestDataset td;
  std::string dataset_dir;

  explicit ServiceFixture(EdgeList graph)
      : td(MakeDataset(std::move(graph), tmp.Sub("ds"), 4)),
        dataset_dir(tmp.Sub("ds")) {}

  ServerOptions Options(const std::string& socket_name) {
    ServerOptions options;
    options.socket_path = tmp.Sub(socket_name);
    options.registry.device = "posix";
    options.registry.verify_on_open = false;  // built in-process just now
    options.workers = 2;
    options.engine_threads = 2;
    return options;
  }

  /// Solo baseline: a fresh one-shot engine run, values as hex strings.
  std::vector<std::string> SoloHexValues(core::Program& program,
                                         const std::string& scratch) {
    core::EngineOptions options;
    options.num_threads = 2;
    options.scratch_dir = tmp.Sub(scratch);
    EXPECT_OK(io::MakeDirectories(options.scratch_dir));
    core::GraphSDEngine engine(*td.dataset, options);
    auto report = engine.Run(program);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    std::vector<std::string> out;
    out.reserve(engine.state()->num_vertices());
    for (VertexId v = 0; v < engine.state()->num_vertices(); ++v) {
      out.push_back(service::HexDouble(program.ValueOf(*engine.state(), v)));
    }
    return out;
  }
};

std::string RunRequestLine(std::uint64_t id, const std::string& dataset,
                           const std::string& algo, VertexId root,
                           double epsilon = 1e-10) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"id\":%llu,\"op\":\"run\",\"dataset\":\"%s\","
                "\"algo\":\"%s\",\"root\":%u,\"epsilon\":%.17g,"
                "\"values\":true}",
                static_cast<unsigned long long>(id), dataset.c_str(),
                algo.c_str(), root, epsilon);
  return buf;
}

JsonValue QueryOnce(const std::string& socket, const std::string& line) {
  ServiceClient client;
  Status s = client.Connect(socket);
  EXPECT_TRUE(s.ok()) << s.ToString();
  auto response = client.RoundTrip(line, kRecvTimeout);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  auto parsed = ParseJson(response.ok() ? *response : "null",
                          /*max_bytes=*/64 << 20);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? *parsed : JsonValue();
}

std::vector<std::string> HexValuesOf(const JsonValue& response) {
  std::vector<std::string> out;
  const JsonValue* values = response.Find("values");
  if (values == nullptr || !values->is_array()) return out;
  out.reserve(values->elements().size());
  for (const JsonValue& v : values->elements()) {
    out.push_back(v.string_value());
  }
  return out;
}

TEST(ServiceTest, PingInfoStatsAndErrors) {
  ServiceFixture fx(MakeErCase());
  QueryServer server(fx.Options("s.sock"));
  ASSERT_OK(server.Start());

  JsonValue ping = QueryOnce(server.socket_path(), R"({"id":1,"op":"ping"})");
  EXPECT_TRUE(ping.GetBool("ok"));
  EXPECT_EQ(ping.GetUint("protocol"), service::kProtocolVersion);

  JsonValue info = QueryOnce(
      server.socket_path(),
      R"({"id":2,"op":"info","dataset":")" + fx.dataset_dir + R"("})");
  EXPECT_TRUE(info.GetBool("ok"));
  EXPECT_EQ(info.GetUint("vertices"), fx.td.dataset->num_vertices());
  EXPECT_TRUE(info.GetBool("weighted"));

  // Malformed JSON and a bad root both produce error envelopes, not drops.
  JsonValue bad = QueryOnce(server.socket_path(), "{nope");
  EXPECT_FALSE(bad.GetBool("ok", true));
  JsonValue bad_root = QueryOnce(
      server.socket_path(),
      RunRequestLine(3, fx.dataset_dir, "bfs", 1u << 30));
  EXPECT_FALSE(bad_root.GetBool("ok", true));
  EXPECT_EQ(bad_root.Find("error")->GetString("code"), "InvalidArgument");

  JsonValue stats =
      QueryOnce(server.socket_path(), R"({"id":4,"op":"stats"})");
  EXPECT_TRUE(stats.GetBool("ok"));
  EXPECT_GE(stats.Find("service")->GetUint("requests"), 4u);
  EXPECT_GE(stats.Find("service")->GetUint("errors"), 2u);

  server.Shutdown();
  server.Wait();
}

// The acceptance gate: K identical + K distinct concurrent queries, every
// response bit-identical to a solo one-shot run of the same query.
TEST(ServiceTest, ConcurrentDifferentialBitIdentical) {
  ServiceFixture fx(MakeErCase());
  const VertexId n = fx.td.dataset->num_vertices();
  const std::vector<VertexId> distinct_roots = {0, 1, n / 3, n / 2, n - 1};
  const VertexId shared_root = 7;
  constexpr int kIdentical = 5;

  // Solo baselines (engine runs without the service).
  std::vector<std::vector<std::string>> solo(distinct_roots.size());
  for (std::size_t i = 0; i < distinct_roots.size(); ++i) {
    algos::Sssp program(distinct_roots[i]);
    solo[i] = fx.SoloHexValues(program, "solo" + std::to_string(i));
  }
  algos::Sssp shared_program(shared_root);
  const auto solo_shared = fx.SoloHexValues(shared_program, "solo_shared");

  ServerOptions options = fx.Options("s.sock");
  options.batch_linger_ms = 50;
  QueryServer server(options);
  ASSERT_OK(server.Start());

  std::vector<std::vector<std::string>> got(distinct_roots.size() +
                                            kIdentical);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < distinct_roots.size(); ++i) {
    threads.emplace_back([&, i] {
      const JsonValue response = QueryOnce(
          server.socket_path(),
          RunRequestLine(100 + i, fx.dataset_dir, "sssp", distinct_roots[i]));
      EXPECT_TRUE(response.GetBool("ok"));
      got[i] = HexValuesOf(response);
    });
  }
  for (int i = 0; i < kIdentical; ++i) {
    threads.emplace_back([&, i] {
      const JsonValue response = QueryOnce(
          server.socket_path(),
          RunRequestLine(200 + i, fx.dataset_dir, "sssp", shared_root));
      EXPECT_TRUE(response.GetBool("ok"));
      got[distinct_roots.size() + i] = HexValuesOf(response);
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t i = 0; i < distinct_roots.size(); ++i) {
    ASSERT_EQ(got[i].size(), solo[i].size()) << "root " << distinct_roots[i];
    EXPECT_EQ(got[i], solo[i]) << "root " << distinct_roots[i];
  }
  for (int i = 0; i < kIdentical; ++i) {
    EXPECT_EQ(got[distinct_roots.size() + i], solo_shared);
  }

  server.Shutdown();
  server.Wait();
}

// PPR is the consuming (non-monotone) batched algorithm: service answers
// must match solo runs within the sum-threshold tolerance.
TEST(ServiceTest, ConcurrentPprWithinTolerance) {
  ServiceFixture fx(MakeWebCase());
  const VertexId n = fx.td.dataset->num_vertices();
  const std::vector<VertexId> roots = {0, n / 2, n - 1};
  const double epsilon = 1e-8;

  std::vector<std::vector<std::string>> solo(roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    algos::PersonalizedPageRank program(roots[i], epsilon);
    solo[i] = fx.SoloHexValues(program, "solo" + std::to_string(i));
  }

  ServerOptions options = fx.Options("s.sock");
  options.batch_linger_ms = 50;
  QueryServer server(options);
  ASSERT_OK(server.Start());

  std::vector<std::vector<std::string>> got(roots.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    threads.emplace_back([&, i] {
      const JsonValue response = QueryOnce(
          server.socket_path(),
          RunRequestLine(300 + i, fx.dataset_dir, "ppr", roots[i], epsilon));
      EXPECT_TRUE(response.GetBool("ok"));
      got[i] = HexValuesOf(response);
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t i = 0; i < roots.size(); ++i) {
    ASSERT_EQ(got[i].size(), solo[i].size());
    for (std::size_t v = 0; v < solo[i].size(); ++v) {
      const double want = ValueOrDie(service::ParseHexDouble(solo[i][v]));
      const double have = ValueOrDie(service::ParseHexDouble(got[i][v]));
      EXPECT_NEAR(have, want, 2e-6 + 1e-6 * std::fabs(want))
          << "root " << roots[i] << " vertex " << v;
    }
  }

  server.Shutdown();
  server.Wait();
}

// Holding the single worker busy forces later arrivals to queue, so the
// coalescer has something to batch; the generous linger covers scheduling
// jitter. Identical requests must dedup onto one lane.
TEST(ServiceTest, BatchingCoalescesQueuedQueries) {
  ServiceFixture fx(MakeErCase());
  const VertexId n = fx.td.dataset->num_vertices();

  ServerOptions options = fx.Options("s.sock");
  options.workers = 1;
  options.batch_linger_ms = 500;
  QueryServer server(options);
  ASSERT_OK(server.Start());

  // Occupy the worker with a long PageRank run.
  std::thread busy([&] {
    ServiceClient client;
    ASSERT_OK(client.Connect(server.socket_path()));
    ASSERT_OK(client.SendLine(
        R"({"id":1,"op":"run","dataset":")" + fx.dataset_dir +
        R"(","algo":"pr","iterations":300})"));
    auto response = client.RecvLine(kRecvTimeout);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
  });

  const std::vector<VertexId> roots = {0, 1, 2, n / 2, 0, 1};  // 2 dups
  std::vector<std::thread> threads;
  std::vector<JsonValue> responses(roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    threads.emplace_back([&, i] {
      responses[i] = QueryOnce(
          server.socket_path(),
          RunRequestLine(400 + i, fx.dataset_dir, "bfs", roots[i]));
    });
  }
  for (std::thread& t : threads) t.join();
  busy.join();

  algos::Bfs solo0(0);
  const auto solo_values = fx.SoloHexValues(solo0, "solo_bfs0");
  bool any_batched = false;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_TRUE(responses[i].GetBool("ok"));
    if (responses[i].GetUint("batch_width") > 1) any_batched = true;
    if (roots[i] == 0) {
      EXPECT_EQ(HexValuesOf(responses[i]), solo_values) << "query " << i;
    }
  }
  EXPECT_TRUE(any_batched);

  const service::ServiceStats stats = server.stats();
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(stats.deduped, 1u);
  EXPECT_EQ(stats.run_requests, roots.size() + 1);

  server.Shutdown();
  server.Wait();
}

TEST(ServiceTest, AdmissionRejectsOverLimitRequests) {
  ServiceFixture fx(MakeErCase());
  ServerOptions options = fx.Options("s.sock");
  options.limits.max_iterations = 5;
  QueryServer server(options);
  ASSERT_OK(server.Start());

  JsonValue over = QueryOnce(
      server.socket_path(),
      R"({"id":1,"op":"run","dataset":")" + fx.dataset_dir +
          R"(","algo":"pr","iterations":100})");
  EXPECT_FALSE(over.GetBool("ok", true));
  EXPECT_EQ(over.Find("error")->GetString("code"), "InvalidArgument");
  EXPECT_GE(server.stats().admission_rejections, 1u);

  // Within the cap still runs.
  JsonValue ok = QueryOnce(
      server.socket_path(),
      R"({"id":2,"op":"run","dataset":")" + fx.dataset_dir +
          R"(","algo":"pr","iterations":3})");
  EXPECT_TRUE(ok.GetBool("ok"));

  server.Shutdown();
  server.Wait();
}

TEST(ServiceTest, AdmissionRejectsOverMemoryBudget) {
  ServiceFixture fx(MakeErCase());
  ServerOptions options = fx.Options("s.sock");
  options.limits.max_request_state_bytes = 16;  // nothing fits
  QueryServer server(options);
  ASSERT_OK(server.Start());

  JsonValue response = QueryOnce(
      server.socket_path(), RunRequestLine(1, fx.dataset_dir, "bfs", 0));
  EXPECT_FALSE(response.GetBool("ok", true));
  EXPECT_EQ(response.Find("error")->GetString("code"), "InvalidArgument");

  server.Shutdown();
  server.Wait();
}

// Tripping the external token (what SIGTERM does in `graphsd serve`) must
// drain: every already-submitted query still gets a response — completed,
// or a cancelled partial report with exit-130 semantics — and Wait()
// returns.
TEST(ServiceTest, ShutdownDrainsInFlightQueries) {
  ServiceFixture fx(MakeErCase());
  ServerOptions options = fx.Options("s.sock");
  options.workers = 1;
  core::CancellationToken external;
  options.external_cancel = &external;
  QueryServer server(options);
  ASSERT_OK(server.Start());

  ServiceClient busy;
  ASSERT_OK(busy.Connect(server.socket_path()));
  ASSERT_OK(busy.SendLine(R"({"id":1,"op":"run","dataset":")" +
                          fx.dataset_dir +
                          R"(","algo":"pr","iterations":2000})"));
  ServiceClient queued;
  ASSERT_OK(queued.Connect(server.socket_path()));
  ASSERT_OK(queued.SendLine(RunRequestLine(2, fx.dataset_dir, "bfs", 0)));

  external.Cancel("test sigterm");

  auto first = busy.RecvLine(kRecvTimeout);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = queued.RecvLine(kRecvTimeout);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  for (const auto& line : {*first, *second}) {
    const JsonValue response = ValueOrDie(ParseJson(line, 64 << 20));
    ASSERT_TRUE(response.GetBool("ok")) << line;
    const std::uint64_t exit_code = response.GetUint("exit_code", 99);
    EXPECT_TRUE(exit_code == 0 || exit_code == 130) << line;
    if (response.GetBool("cancelled")) EXPECT_EQ(exit_code, 130u);
  }

  server.Wait();  // must return: the token is tripped
  const service::ServiceStats stats = server.stats();
  EXPECT_EQ(stats.run_requests, 2u);
}

}  // namespace
}  // namespace graphsd::testing
