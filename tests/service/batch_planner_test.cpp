#include "service/batch_planner.hpp"

#include <gtest/gtest.h>

namespace graphsd::service {
namespace {

QueryRequest MakeRun(const std::string& algo, VertexId root,
                 const std::string& dataset = "/d") {
  QueryRequest r;
  r.op = "run";
  r.dataset = dataset;
  r.algo = algo;
  r.root = root;
  return r;
}

TEST(BatchPlanner, OnlySingleSourceAlgosAreBatchable) {
  EXPECT_TRUE(IsBatchableRequest(MakeRun("bfs", 0)));
  EXPECT_TRUE(IsBatchableRequest(MakeRun("sssp", 0)));
  EXPECT_TRUE(IsBatchableRequest(MakeRun("widest_path", 0)));
  EXPECT_TRUE(IsBatchableRequest(MakeRun("ppr", 0)));
  EXPECT_FALSE(IsBatchableRequest(MakeRun("pr", 0)));
  EXPECT_FALSE(IsBatchableRequest(MakeRun("prd", 0)));
  EXPECT_FALSE(IsBatchableRequest(MakeRun("cc", 0)));
}

TEST(BatchPlanner, CompatibilityRequiresIdenticalExecutionShape) {
  EXPECT_TRUE(Compatible(MakeRun("bfs", 1), MakeRun("bfs", 2)));
  EXPECT_FALSE(Compatible(MakeRun("bfs", 1), MakeRun("sssp", 2)));
  EXPECT_FALSE(Compatible(MakeRun("bfs", 1), MakeRun("bfs", 2, "/other")));
  QueryRequest eps = MakeRun("ppr", 1);
  eps.epsilon = 1e-6;
  EXPECT_FALSE(Compatible(MakeRun("ppr", 1), eps));
  QueryRequest iter = MakeRun("bfs", 1);
  iter.iterations = 3;
  EXPECT_FALSE(Compatible(MakeRun("bfs", 1), iter));
  QueryRequest dl = MakeRun("bfs", 1);
  dl.deadline_seconds = 1;
  EXPECT_FALSE(Compatible(MakeRun("bfs", 1), dl));
}

TEST(BatchPlanner, CoalescesCompatibleRootsAndSkipsOthers) {
  const QueryRequest leader = MakeRun("bfs", 10);
  const std::vector<QueryRequest> queued = {
      MakeRun("bfs", 11), MakeRun("sssp", 12), MakeRun("bfs", 13), MakeRun("cc", 0),
  };
  const BatchPlan plan = PlanBatch(leader, queued, /*max_lanes=*/8);
  EXPECT_EQ(plan.width(), 3u);
  EXPECT_EQ(plan.roots, (std::vector<VertexId>{10, 11, 13}));
  EXPECT_EQ(plan.member_indices, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(plan.lanes, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(plan.deduped, 0u);
}

TEST(BatchPlanner, IdenticalRootsShareALane) {
  const QueryRequest leader = MakeRun("bfs", 5);
  const std::vector<QueryRequest> queued = {MakeRun("bfs", 5), MakeRun("bfs", 6),
                                            MakeRun("bfs", 6)};
  const BatchPlan plan = PlanBatch(leader, queued, /*max_lanes=*/8);
  EXPECT_EQ(plan.width(), 2u);  // two distinct roots
  EXPECT_EQ(plan.member_indices.size(), 3u);
  EXPECT_EQ(plan.lanes, (std::vector<std::uint32_t>{0, 0, 1, 1}));
  EXPECT_EQ(plan.deduped, 2u);
}

TEST(BatchPlanner, RespectsMaxLanesButStillDedups) {
  const QueryRequest leader = MakeRun("bfs", 0);
  std::vector<QueryRequest> queued;
  for (VertexId r = 1; r < 10; ++r) queued.push_back(MakeRun("bfs", r));
  queued.push_back(MakeRun("bfs", 0));  // dedups onto the leader's lane
  const BatchPlan plan = PlanBatch(leader, queued, /*max_lanes=*/4);
  EXPECT_EQ(plan.width(), 4u);
  EXPECT_EQ(plan.member_indices.size(), 4u);  // 3 new lanes + 1 dedup
  EXPECT_EQ(plan.deduped, 1u);
  EXPECT_EQ(plan.lanes.back(), 0u);
}

TEST(BatchPlanner, NonBatchableLeaderYieldsSoloPlan) {
  const std::vector<QueryRequest> queued = {MakeRun("pr", 0), MakeRun("pr", 0)};
  const BatchPlan plan = PlanBatch(MakeRun("pr", 0), queued, /*max_lanes=*/8);
  EXPECT_EQ(plan.width(), 1u);
  EXPECT_TRUE(plan.member_indices.empty());
  const BatchPlan solo = PlanBatch(MakeRun("bfs", 1), queued, /*max_lanes=*/1);
  EXPECT_EQ(solo.width(), 1u);
  EXPECT_TRUE(solo.member_indices.empty());
}

}  // namespace
}  // namespace graphsd::service
