#include "service/json.hpp"

#include <gtest/gtest.h>

namespace graphsd::service {
namespace {

TEST(ServiceJson, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("42")->number(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-1.5e3")->number(), -1500.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value(), "hi");
}

TEST(ServiceJson, ParsesNestedContainers) {
  auto v = ParseJson(R"({"a":[1,2,{"b":true}],"c":{"d":null}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->elements().size(), 3u);
  EXPECT_DOUBLE_EQ(a->elements()[0].number(), 1.0);
  EXPECT_TRUE(a->elements()[2].Find("b")->bool_value());
  EXPECT_TRUE(v->Find("c")->Find("d")->is_null());
}

TEST(ServiceJson, DecodesStringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\nd\tA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "a\"b\\c\nd\tA");
}

TEST(ServiceJson, RoundTripsUnicodeEscapeToUtf8) {
  auto v = ParseJson("\"\\u00e9\"");  // é as a BMP escape
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "\xc3\xa9");
}

TEST(ServiceJson, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // trailing garbage
}

TEST(ServiceJson, RejectsOversizeAndOverdeepInput) {
  EXPECT_FALSE(ParseJson("\"aaaaaaaaaa\"", /*max_bytes=*/4).ok());
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += '[';
  for (int i = 0; i < 64; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(ServiceJson, TypedAccessorsFallBackOnMissingOrWrongType) {
  auto v = ParseJson(R"({"s":"x","n":7,"b":true,"neg":-1,"frac":1.5})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetString("s"), "x");
  EXPECT_EQ(v->GetString("missing", "fb"), "fb");
  EXPECT_EQ(v->GetString("n", "fb"), "fb");  // wrong type
  EXPECT_DOUBLE_EQ(v->GetNumber("n"), 7.0);
  EXPECT_DOUBLE_EQ(v->GetNumber("s", 3.0), 3.0);
  EXPECT_TRUE(v->GetBool("b"));
  EXPECT_EQ(v->GetUint("n"), 7u);
  // Negative / fractional numbers are not valid uints.
  EXPECT_EQ(v->GetUint("neg", 9), 9u);
  EXPECT_EQ(v->GetUint("frac", 9), 9u);
}

}  // namespace
}  // namespace graphsd::service
