#include "core/vertex_state.hpp"

#include <gtest/gtest.h>

#include "core/slot.hpp"
#include "testing_util.hpp"

namespace graphsd::core {
namespace {

using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

TEST(VertexState, AllocatesRequestedArrays) {
  VertexState state(100, 2, /*gather=*/false);
  EXPECT_EQ(state.num_vertices(), 100u);
  EXPECT_EQ(state.num_program_arrays(), 2u);
  EXPECT_EQ(state.array(0).size(), 100u);
  EXPECT_EQ(state.array(1).size(), 100u);
  EXPECT_EQ(state.contrib(ContribSlot::kPrimary).size(), 100u);
  EXPECT_EQ(state.contrib(ContribSlot::kSecondary).size(), 100u);
}

TEST(VertexState, GatherModeAddsAccumulators) {
  VertexState state(10, 1, /*gather=*/true);
  EXPECT_EQ(state.accum(AccumSlot::kA).size(), 10u);
  EXPECT_EQ(state.accum(AccumSlot::kB).size(), 10u);
}

TEST(VertexState, PushModeHasNoAccumulators) {
  VertexState state(10, 1, /*gather=*/false);
  EXPECT_TRUE(state.accum(AccumSlot::kA).empty());
}

TEST(VertexState, ArraysAreZeroInitialized) {
  VertexState state(50, 3, false);
  for (std::uint32_t a = 0; a < 3; ++a) {
    for (const Slot s : state.array(a)) EXPECT_EQ(s, 0u);
  }
}

TEST(VertexState, BytesPerVertexCountsProgramArraysOnly) {
  VertexState state(10, 2, /*gather=*/true);
  EXPECT_EQ(state.BytesPerVertex(), 16u);  // 2 arrays * 8 B
}

TEST(VertexState, PersistLoadRoundTrip) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  VertexState state(64, 2, false);
  for (VertexId v = 0; v < 64; ++v) {
    state.array(0)[v] = v;
    state.array(1)[v] = SlotFromDouble(v * 0.5);
  }
  ASSERT_OK(state.Persist(*device, dir.Sub("values.bin")));

  VertexState reload(64, 2, false);
  ASSERT_OK(reload.Load(*device, dir.Sub("values.bin")));
  for (VertexId v = 0; v < 64; ++v) {
    EXPECT_EQ(reload.array(0)[v], v);
    EXPECT_DOUBLE_EQ(SlotToDouble(reload.array(1)[v]), v * 0.5);
  }
}

TEST(VertexState, PersistChargesVertexValueTraffic) {
  TempDir dir;
  auto device = io::MakeSimulatedDevice();
  VertexState state(1000, 2, false);
  ASSERT_OK(state.Persist(*device, dir.Sub("values.bin")));
  // |V| * N with N = 16 bytes.
  EXPECT_EQ(device->stats().Snapshot().TotalWriteBytes(), 1000u * 16);
  ASSERT_OK(state.Load(*device, dir.Sub("values.bin")));
  EXPECT_EQ(device->stats().Snapshot().TotalReadBytes(), 1000u * 16);
}

TEST(VertexState, LoadMissingFileFails) {
  TempDir dir;
  auto device = io::MakePosixDevice();
  VertexState state(10, 1, false);
  EXPECT_FALSE(state.Load(*device, dir.Sub("missing.bin")).ok());
}

}  // namespace
}  // namespace graphsd::core
