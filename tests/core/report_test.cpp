// ExecutionReport rendering and arithmetic.
#include <gtest/gtest.h>

#include "core/report.hpp"

namespace graphsd::core {
namespace {

ExecutionReport MakeReport() {
  ExecutionReport r;
  r.engine = "GraphSD";
  r.algorithm = "sssp";
  r.dataset = "toy";
  r.iterations = 7;
  r.rounds = 4;
  r.compute_seconds = 0.25;
  r.update_seconds = 0.20;
  r.io_seconds = 1.75;
  r.scheduler_seconds = 0.001;
  r.io.seq_read_bytes = 1 << 20;
  r.buffer_hits = 3;
  r.buffer_misses = 9;
  r.buffer_bytes_saved = 4096;
  return r;
}

TEST(ExecutionReport, TotalsAndBreakdown) {
  const ExecutionReport r = MakeReport();
  EXPECT_DOUBLE_EQ(r.TotalSeconds(), 2.0);
  EXPECT_DOUBLE_EQ(r.OtherSeconds(), 0.05);
}

TEST(ExecutionReport, OtherSecondsClampsAtZero) {
  ExecutionReport r = MakeReport();
  r.update_seconds = 0.30;  // accumulators can slightly exceed the wall
  EXPECT_DOUBLE_EQ(r.OtherSeconds(), 0.0);
}

TEST(ExecutionReport, SummaryNamesEverything) {
  const std::string summary = MakeReport().Summary();
  for (const char* needle :
       {"GraphSD", "sssp", "toy", "7 iterations", "4 rounds", "buffer",
        "3 hits", "9 misses"}) {
    EXPECT_NE(summary.find(needle), std::string::npos) << needle;
  }
}

TEST(ExecutionReport, SummaryOmitsBufferLineWhenUnused) {
  ExecutionReport r = MakeReport();
  r.buffer_hits = 0;
  r.buffer_misses = 0;
  EXPECT_EQ(r.Summary().find("buffer"), std::string::npos);
}

TEST(RoundModel, CharsAreStable) {
  // Bench output and Figure 10 depend on these letters.
  EXPECT_EQ(static_cast<char>(RoundModel::kSciu), 'S');
  EXPECT_EQ(static_cast<char>(RoundModel::kFciu), 'F');
  EXPECT_EQ(static_cast<char>(RoundModel::kPlainFull), 'P');
  EXPECT_EQ(static_cast<char>(RoundModel::kSkipped), '-');
}

}  // namespace
}  // namespace graphsd::core
