#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "testing_util.hpp"

namespace graphsd::core {
namespace {

using graphsd::testing::BuildTestGrid;
using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

class SchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = io::MakeSimulatedDevice();
    RmatOptions options;
    options.scale = 10;
    options.edge_factor = 8;
    graph_ = GenerateRmat(options);
    BuildTestGrid(graph_, *device_, dir_.Sub("ds"), 4);
    dataset_ = std::make_unique<partition::GridDataset>(
        ValueOrDie(partition::GridDataset::Open(*device_, dir_.Sub("ds"))));
  }

  TempDir dir_;
  std::unique_ptr<io::Device> device_;
  EdgeList graph_;
  std::unique_ptr<partition::GridDataset> dataset_;
};

TEST_F(SchedulerTest, FullFrontierSelectsFullModel) {
  StateAwareScheduler scheduler(*dataset_, io::IoCostModel::Hdd());
  Frontier active(dataset_->num_vertices());
  active.ActivateAll();
  const SchedulerDecision d = scheduler.Evaluate(active, 8, false);
  EXPECT_FALSE(d.on_demand);
  EXPECT_EQ(d.active_vertices, dataset_->num_vertices());
  EXPECT_EQ(d.active_edges, dataset_->num_edges());
  EXPECT_GT(d.cost_on_demand, 0.0);
  EXPECT_GT(d.cost_full, 0.0);
}

TEST_F(SchedulerTest, TinyFrontierSelectsOnDemand) {
  StateAwareScheduler scheduler(*dataset_, io::IoCostModel::ScaledHdd());
  Frontier active(dataset_->num_vertices());
  active.Activate(1);
  const SchedulerDecision d = scheduler.Evaluate(active, 8, false);
  EXPECT_TRUE(d.on_demand);
  EXPECT_LT(d.cost_on_demand, d.cost_full);
  EXPECT_EQ(d.active_vertices, 1u);
  EXPECT_EQ(d.active_edges, dataset_->out_degrees()[1]);
}

TEST_F(SchedulerTest, EmptyFrontierOnDemandIsNearlyFree) {
  StateAwareScheduler scheduler(*dataset_, io::IoCostModel::ScaledHdd());
  Frontier active(dataset_->num_vertices());
  const SchedulerDecision d = scheduler.Evaluate(active, 8, false);
  EXPECT_TRUE(d.on_demand);
  EXPECT_EQ(d.active_edges, 0u);
  EXPECT_EQ(d.rand_bytes + d.seq_bytes, 0u);
}

TEST_F(SchedulerTest, FullCostIsFrontierIndependent) {
  StateAwareScheduler scheduler(*dataset_, io::IoCostModel::Hdd());
  Frontier small(dataset_->num_vertices());
  small.Activate(0);
  Frontier large(dataset_->num_vertices());
  large.ActivateAll();
  const auto d1 = scheduler.Evaluate(small, 8, false);
  const auto d2 = scheduler.Evaluate(large, 8, false);
  EXPECT_DOUBLE_EQ(d1.cost_full, d2.cost_full);
}

TEST_F(SchedulerTest, OnDemandCostGrowsWithFrontier) {
  StateAwareScheduler scheduler(*dataset_, io::IoCostModel::Hdd());
  double prev = 0;
  // Spacing stays >= 8 so each active vertex remains its own run; at
  // spacing 1 the frontier would collapse into a single sequential run and
  // the cost would legitimately drop.
  for (std::uint64_t count : {1u, 16u, 64u, 128u}) {
    Frontier active(dataset_->num_vertices());
    for (std::uint64_t k = 0; k < count; ++k) {
      active.Activate(static_cast<VertexId>(
          k * (dataset_->num_vertices() / count)));
    }
    const auto d = scheduler.Evaluate(active, 8, false);
    EXPECT_GE(d.cost_on_demand, prev);
    prev = d.cost_on_demand;
  }
}

TEST_F(SchedulerTest, WeightedEdgesRaiseFullCost) {
  // Build a weighted dataset.
  TempDir dir2;
  RmatOptions options;
  options.scale = 9;
  options.max_weight = 5.0;
  const EdgeList weighted = GenerateRmat(options);
  BuildTestGrid(weighted, *device_, dir2.Sub("w"), 4);
  const auto ds =
      ValueOrDie(partition::GridDataset::Open(*device_, dir2.Sub("w")));
  StateAwareScheduler scheduler(ds, io::IoCostModel::Hdd());
  Frontier active(ds.num_vertices());
  active.ActivateAll();
  const auto with = scheduler.Evaluate(active, 8, true);
  const auto without = scheduler.Evaluate(active, 8, false);
  EXPECT_GT(with.cost_full, without.cost_full);
}

TEST_F(SchedulerTest, ContiguousActiveRunsCountAsSequential) {
  StateAwareScheduler scheduler(*dataset_, io::IoCostModel::Hdd());
  Frontier active(dataset_->num_vertices());
  // One large contiguous run of actives.
  for (VertexId v = 0; v < 512; ++v) active.Activate(v);
  const auto d = scheduler.Evaluate(active, 8, false);
  EXPECT_LE(d.random_requests, 1u);
  EXPECT_GT(d.seq_bytes + d.rand_bytes, 0u);
}

TEST_F(SchedulerTest, ScatteredActivesCountAsRandom) {
  StateAwareScheduler scheduler(*dataset_, io::IoCostModel::Hdd());
  Frontier active(dataset_->num_vertices());
  for (VertexId v = 0; v < dataset_->num_vertices(); v += 64) {
    active.Activate(v);
  }
  const auto d = scheduler.Evaluate(active, 8, false);
  EXPECT_GT(d.random_requests, 1u);
}

TEST_F(SchedulerTest, EvaluationOverheadIsRecordedAndSmall) {
  StateAwareScheduler scheduler(*dataset_, io::IoCostModel::Hdd());
  Frontier active(dataset_->num_vertices());
  active.ActivateAll();
  const auto d = scheduler.Evaluate(active, 8, false);
  EXPECT_GT(d.eval_seconds, 0.0);
  EXPECT_LT(d.eval_seconds, 1.0);
}

TEST_F(SchedulerTest, SsdProfileShiftsCrossoverTowardOnDemand) {
  // With near-zero seek cost, even a fairly large scattered frontier should
  // prefer on-demand; with HDD seeks it should not.
  Frontier active(dataset_->num_vertices());
  for (VertexId v = 0; v < dataset_->num_vertices(); v += 8) {
    active.Activate(v);
  }
  StateAwareScheduler hdd(*dataset_, io::IoCostModel::Hdd());
  StateAwareScheduler ssd(*dataset_, io::IoCostModel::Ssd());
  const auto d_hdd = hdd.Evaluate(active, 8, false);
  const auto d_ssd = ssd.Evaluate(active, 8, false);
  const double hdd_ratio = d_hdd.cost_on_demand / d_hdd.cost_full;
  const double ssd_ratio = d_ssd.cost_on_demand / d_ssd.cost_full;
  EXPECT_LT(ssd_ratio, hdd_ratio);
}

TEST_F(SchedulerTest, SsdProfileFlipsADecisionTheHddProfileRefuses) {
  // The C_r <= C_s crossover re-examined under SSD economics: sweeping
  // frontier density from sparse to dense, there must exist a density where
  // the HDD profile still streams (C_r > C_s, its 8 ms seeks make scattered
  // requests ruinous) but the SSD profile — seeks two orders of magnitude
  // cheaper — already picks on-demand. (ScaledHdd would be the wrong
  // baseline here: its proxy-rescaled seeks are already SSD-sized.) The
  // fixture's dataset is too small for the flip to exist — its full scan
  // costs less than one seek chain on either profile — so build one whose
  // scan time lands between the two profiles' per-active seek costs.
  TempDir dir2;
  RmatOptions options;
  options.scale = 13;
  options.edge_factor = 16;
  const EdgeList big = GenerateRmat(options);
  BuildTestGrid(big, *device_, dir2.Sub("big"), 4);
  const auto ds =
      ValueOrDie(partition::GridDataset::Open(*device_, dir2.Sub("big")));
  StateAwareScheduler hdd(ds, io::IoCostModel::Hdd());
  StateAwareScheduler ssd(ds, io::IoCostModel::Ssd());
  bool flipped = false;
  for (VertexId stride :
       {8192u, 4096u, 2048u, 1024u, 512u, 256u, 128u, 64u, 32u, 16u}) {
    Frontier active(ds.num_vertices());
    for (VertexId v = 0; v < ds.num_vertices(); v += stride) {
      active.Activate(v);
    }
    const auto d_hdd = hdd.Evaluate(active, 8, false);
    const auto d_ssd = ssd.Evaluate(active, 8, false);
    // The SSD profile can never be the one still streaming when the HDD
    // profile has switched to on-demand.
    EXPECT_FALSE(!d_ssd.on_demand && d_hdd.on_demand) << "stride " << stride;
    if (!d_hdd.on_demand && d_ssd.on_demand) flipped = true;
  }
  EXPECT_TRUE(flipped);
}

}  // namespace
}  // namespace graphsd::core
