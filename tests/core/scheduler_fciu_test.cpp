// The FCIU-aware full-cost estimate and the per-run request model
// (DESIGN.md §5.9).
#include <gtest/gtest.h>

#include "algos/sssp.hpp"
#include "core/engine.hpp"
#include "core/scheduler.hpp"
#include "graph/generators.hpp"
#include "testing_util.hpp"

namespace graphsd::core {
namespace {

using graphsd::testing::BuildTestGrid;
using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

class SchedulerFciuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = io::MakeSimulatedDevice();
    RmatOptions options;
    options.scale = 10;
    options.edge_factor = 8;
    graph_ = GenerateRmat(options);
    BuildTestGrid(graph_, *device_, dir_.Sub("ds"), 4);
    dataset_ = std::make_unique<partition::GridDataset>(
        ValueOrDie(partition::GridDataset::Open(*device_, dir_.Sub("ds"))));
  }

  TempDir dir_;
  std::unique_ptr<io::Device> device_;
  EdgeList graph_;
  std::unique_ptr<partition::GridDataset> dataset_;
};

// Per iteration, an FCIU round (1 + secondary-fraction scans over two
// iterations) is cheaper than a plain full iteration whenever the
// secondary fraction is below 1 — which the 2-D grid guarantees.
TEST_F(SchedulerFciuTest, FciuFullCostBelowPlainFullCost) {
  StateAwareScheduler scheduler(*dataset_, io::IoCostModel::ScaledHdd());
  Frontier active(dataset_->num_vertices());
  active.ActivateAll();
  const auto plain = scheduler.Evaluate(active, 8, false, false);
  const auto fciu = scheduler.Evaluate(active, 8, false, true);
  EXPECT_LT(fciu.cost_full, plain.cost_full);
  EXPECT_GT(fciu.cost_full, plain.cost_full / 2);  // secondary reload > 0
  // C_r is unaffected by the flag.
  EXPECT_DOUBLE_EQ(fciu.cost_on_demand, plain.cost_on_demand);
}

// The FCIU amortization can flip a borderline decision toward full I/O.
TEST_F(SchedulerFciuTest, AmortizationShiftsCrossover) {
  StateAwareScheduler scheduler(*dataset_, io::IoCostModel::ScaledHdd());
  // Grow the frontier until the plain rule picks on-demand but the FCIU
  // rule picks full; such a band must exist between the two thresholds.
  bool found_band = false;
  for (std::uint64_t count = 1; count <= dataset_->num_vertices();
       count *= 2) {
    Frontier active(dataset_->num_vertices());
    for (std::uint64_t k = 0; k < count; ++k) {
      active.Activate(static_cast<VertexId>(
          (k * 2654435761u) % dataset_->num_vertices()));
    }
    const auto plain = scheduler.Evaluate(active, 8, false, false);
    const auto fciu = scheduler.Evaluate(active, 8, false, true);
    if (plain.on_demand && !fciu.on_demand) found_band = true;
    // Never the other way around: FCIU only lowers C_s.
    EXPECT_FALSE(!plain.on_demand && fciu.on_demand);
  }
  EXPECT_TRUE(found_band);
}

// A single heavy hub (one run, many edges) must be estimated as few
// requests — its edge list streams — while the same edges scattered over
// many vertices cost many requests.
TEST_F(SchedulerFciuTest, RequestModelDistinguishesHubFromScatter) {
  StateAwareScheduler scheduler(*dataset_, io::IoCostModel::ScaledHdd());
  const auto& degrees = dataset_->out_degrees();
  VertexId hub = 0;
  for (VertexId v = 1; v < dataset_->num_vertices(); ++v) {
    if (degrees[v] > degrees[hub]) hub = v;
  }
  Frontier hub_only(dataset_->num_vertices());
  hub_only.Activate(hub);
  const auto hub_decision = scheduler.Evaluate(hub_only, 8, false);

  // Scatter edges across many isolated vertices: many runs, each its own
  // set of requests. The hub is a single run regardless of its edge count.
  Frontier scattered(dataset_->num_vertices());
  std::uint64_t scattered_edges = 0;
  for (VertexId v = 0; v < dataset_->num_vertices(); v += 16) {
    if (degrees[v] == 0) continue;
    scattered.Activate(v);
    scattered_edges += degrees[v];
  }
  ASSERT_GT(scattered_edges, degrees[hub]);
  const auto scatter_decision = scheduler.Evaluate(scattered, 8, false);
  EXPECT_EQ(hub_decision.random_requests, 1u);
  EXPECT_GT(scatter_decision.random_requests,
            10 * hub_decision.random_requests);
  EXPECT_GT(scatter_decision.cost_on_demand, hub_decision.cost_on_demand);
}

// Estimate tracks reality: force an on-demand run and compare the
// scheduler's C_r with the modeled I/O the round actually incurred.
TEST_F(SchedulerFciuTest, OnDemandEstimateTracksActualCost) {
  // Use the engine itself: run SSSP with forced on-demand and check each
  // recorded round's estimate against its actual modeled io time.
  auto sim = io::MakeSimulatedDevice(io::IoCostModel::ScaledHdd());
  TempDir dir2;
  RmatOptions options;
  options.scale = 10;
  options.edge_factor = 8;
  options.max_weight = 10.0;
  const EdgeList weighted = GenerateRmat(options);
  BuildTestGrid(weighted, *sim, dir2.Sub("w"), 4);
  const auto ds = ValueOrDie(partition::GridDataset::Open(*sim, dir2.Sub("w")));

  core::EngineOptions engine_options;
  engine_options.force_on_demand = true;
  GraphSDEngine engine(ds, engine_options);
  algos::Sssp sssp(0);
  const auto report = ValueOrDie(engine.Run(sssp));
  int scored = 0;
  for (const auto& round : report.per_round) {
    if (round.model != RoundModel::kSciu || round.io_seconds < 1e-4) continue;
    ++scored;
    const double ratio = round.cost_on_demand / round.io_seconds;
    EXPECT_GT(ratio, 0.4) << "round at iteration " << round.first_iteration;
    EXPECT_LT(ratio, 4.0) << "round at iteration " << round.first_iteration;
  }
  EXPECT_GT(scored, 0);
}

}  // namespace
}  // namespace graphsd::core
