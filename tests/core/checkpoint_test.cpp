// Tests for GSCK checkpoint frames and the two-slot store: field-exact
// round trips, corruption detection (magic, version, truncation, bit flips,
// trailing garbage), slot alternation, and LoadLatest's fallback semantics.
#include "core/checkpoint.hpp"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "io/device.hpp"
#include "io/file.hpp"
#include "testing_util.hpp"

namespace graphsd::core {
namespace {

using graphsd::testing::BuildTestGrid;
using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

Checkpoint SampleCheckpoint(std::uint32_t iteration = 7) {
  Checkpoint cp;
  cp.fingerprint = 0xdeadbeef;
  cp.algorithm = "sssp";
  cp.gather = false;
  cp.iteration = iteration;
  cp.num_vertices = 5;
  cp.arrays = {{1, 2, 3, 4, 5}, {10, 20, 30, 40, 50}};
  cp.active = {0, 2, 4};
  cp.preact = {1, 3};
  cp.rounds = 9;
  cp.degraded_rounds = 1;
  cp.compute_seconds = 1.5;
  cp.update_seconds = 0.75;
  cp.io_seconds = 2.25;
  cp.scheduler_seconds = 0.125;
  cp.overlapped_seconds = 2.5;
  cp.decode_seconds = 0.0625;
  cp.io.seq_read_bytes = 1000;
  cp.io.rand_read_bytes = 2000;
  cp.io.seq_write_bytes = 3000;
  cp.io.rand_write_bytes = 123;
  cp.io.seq_read_ops = 11;
  cp.io.seq_write_ops = 12;
  cp.io.rand_read_ops = 13;
  cp.io.rand_write_ops = 14;
  cp.io.retries = 2;
  cp.io.checksum_failures = 1;
  cp.buffer_hits = 42;
  cp.buffer_misses = 17;
  cp.buffer_bytes_saved = 4096;
  cp.buffer_disk_bytes_saved = 2048;
  cp.frames_decoded = 5;
  cp.compressed_bytes_read = 555;
  cp.decoded_bytes = 777;
  cp.checkpoints_written = 3;
  cp.checkpoint_bytes = 999;
  cp.checkpoint_seconds = 0.03125;
  return cp;
}

void ExpectEqual(const Checkpoint& a, const Checkpoint& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.gather, b.gather);
  EXPECT_EQ(a.iteration, b.iteration);
  EXPECT_EQ(a.num_vertices, b.num_vertices);
  EXPECT_EQ(a.arrays, b.arrays);
  EXPECT_EQ(a.active, b.active);
  EXPECT_EQ(a.preact, b.preact);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.degraded_rounds, b.degraded_rounds);
  EXPECT_EQ(a.compute_seconds, b.compute_seconds);
  EXPECT_EQ(a.update_seconds, b.update_seconds);
  EXPECT_EQ(a.io_seconds, b.io_seconds);
  EXPECT_EQ(a.scheduler_seconds, b.scheduler_seconds);
  EXPECT_EQ(a.overlapped_seconds, b.overlapped_seconds);
  EXPECT_EQ(a.decode_seconds, b.decode_seconds);
  EXPECT_EQ(a.io.seq_read_bytes, b.io.seq_read_bytes);
  EXPECT_EQ(a.io.rand_read_bytes, b.io.rand_read_bytes);
  EXPECT_EQ(a.io.seq_write_bytes, b.io.seq_write_bytes);
  EXPECT_EQ(a.io.rand_write_bytes, b.io.rand_write_bytes);
  EXPECT_EQ(a.io.seq_read_ops, b.io.seq_read_ops);
  EXPECT_EQ(a.io.seq_write_ops, b.io.seq_write_ops);
  EXPECT_EQ(a.io.rand_read_ops, b.io.rand_read_ops);
  EXPECT_EQ(a.io.rand_write_ops, b.io.rand_write_ops);
  EXPECT_EQ(a.io.retries, b.io.retries);
  EXPECT_EQ(a.io.checksum_failures, b.io.checksum_failures);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.buffer_misses, b.buffer_misses);
  EXPECT_EQ(a.buffer_bytes_saved, b.buffer_bytes_saved);
  EXPECT_EQ(a.buffer_disk_bytes_saved, b.buffer_disk_bytes_saved);
  EXPECT_EQ(a.frames_decoded, b.frames_decoded);
  EXPECT_EQ(a.compressed_bytes_read, b.compressed_bytes_read);
  EXPECT_EQ(a.decoded_bytes, b.decoded_bytes);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_EQ(a.checkpoint_bytes, b.checkpoint_bytes);
  EXPECT_EQ(a.checkpoint_seconds, b.checkpoint_seconds);
}

TEST(CheckpointFrame, RoundTripsEveryField) {
  const Checkpoint cp = SampleCheckpoint();
  const std::vector<std::uint8_t> frame = EncodeCheckpoint(cp);
  ASSERT_GE(frame.size(), kCheckpointHeaderBytes);
  EXPECT_EQ(frame[0], 'G');
  EXPECT_EQ(frame[1], 'S');
  EXPECT_EQ(frame[2], 'C');
  EXPECT_EQ(frame[3], 'K');
  const Checkpoint decoded = ValueOrDie(DecodeCheckpoint(frame));
  ExpectEqual(cp, decoded);
}

TEST(CheckpointFrame, RoundTripsGatherWithoutFrontiers) {
  Checkpoint cp = SampleCheckpoint();
  cp.gather = true;
  cp.active.clear();
  cp.preact.clear();
  const Checkpoint decoded = ValueOrDie(DecodeCheckpoint(EncodeCheckpoint(cp)));
  ExpectEqual(cp, decoded);
}

TEST(CheckpointFrame, RejectsBadMagic) {
  std::vector<std::uint8_t> frame = EncodeCheckpoint(SampleCheckpoint());
  frame[0] = 'X';
  EXPECT_EQ(DecodeCheckpoint(frame).status().code(), StatusCode::kCorruptData);
}

TEST(CheckpointFrame, RejectsNewerVersionAsUnimplemented) {
  std::vector<std::uint8_t> frame = EncodeCheckpoint(SampleCheckpoint());
  frame[4] = 0xff;  // version low byte
  EXPECT_EQ(DecodeCheckpoint(frame).status().code(),
            StatusCode::kUnimplemented);
}

TEST(CheckpointFrame, RejectsEveryTruncation) {
  const std::vector<std::uint8_t> frame = EncodeCheckpoint(SampleCheckpoint());
  // Chop at a spread of prefix lengths including 0, mid-header, mid-payload
  // and one-short: none may decode.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{5}, kCheckpointHeaderBytes - 1,
        kCheckpointHeaderBytes, frame.size() / 2, frame.size() - 1}) {
    std::vector<std::uint8_t> torn(frame.begin(), frame.begin() + keep);
    EXPECT_EQ(DecodeCheckpoint(torn).status().code(), StatusCode::kCorruptData)
        << "prefix of " << keep << " bytes decoded";
  }
}

TEST(CheckpointFrame, RejectsEveryPayloadBitFlip) {
  const std::vector<std::uint8_t> frame = EncodeCheckpoint(SampleCheckpoint());
  // Flipping any single payload bit must break the CRC. Sampling every
  // seventh byte keeps the test fast while covering the whole payload.
  for (std::size_t i = kCheckpointHeaderBytes; i < frame.size(); i += 7) {
    std::vector<std::uint8_t> flipped = frame;
    flipped[i] ^= 0x10;
    EXPECT_FALSE(DecodeCheckpoint(flipped).ok()) << "byte " << i;
  }
}

TEST(CheckpointFrame, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> frame = EncodeCheckpoint(SampleCheckpoint());
  frame.push_back(0);
  EXPECT_EQ(DecodeCheckpoint(frame).status().code(), StatusCode::kCorruptData);
}

TEST(CheckpointFrame, RejectsUnsortedFrontier) {
  // Hand-corrupt an id list by swapping two ids: the decoder must notice the
  // ordering violation even though sizes and CRC are re-encoded consistently.
  Checkpoint cp = SampleCheckpoint();
  cp.active = {4, 2, 0};  // not ascending
  const std::vector<std::uint8_t> frame = EncodeCheckpoint(cp);
  EXPECT_EQ(DecodeCheckpoint(frame).status().code(), StatusCode::kCorruptData);
}

TEST(DatasetFingerprintTest, DistinguishesRebuilds) {
  TempDir dir;
  auto device = io::MakeSimulatedDevice();
  const EdgeList graph = GenerateGrid2D(4, 4, /*seed=*/1, /*max_weight=*/0);
  const auto m2 = BuildTestGrid(graph, *device, dir.Sub("p2"), 2);
  const auto m4 = BuildTestGrid(graph, *device, dir.Sub("p4"), 4);
  EXPECT_EQ(DatasetFingerprint(m2), DatasetFingerprint(m2));
  EXPECT_NE(DatasetFingerprint(m2), DatasetFingerprint(m4));
}

TEST(CheckpointStoreTest, EmptyDirectoryIsNotFound) {
  TempDir dir;
  CheckpointStore store(dir.Sub("ck"));
  EXPECT_FALSE(store.AnySlotExists());
  EXPECT_EQ(store.LoadLatest().status().code(), StatusCode::kNotFound);
}

TEST(CheckpointStoreTest, WriteThenLoadLatestRoundTrips) {
  TempDir dir;
  CheckpointStore store(dir.Sub("ck"));
  const Checkpoint cp = SampleCheckpoint(3);
  std::uint64_t bytes = 0;
  ASSERT_OK(store.Write(cp, &bytes));
  EXPECT_GT(bytes, kCheckpointHeaderBytes);
  EXPECT_TRUE(store.AnySlotExists());
  ExpectEqual(cp, ValueOrDie(store.LoadLatest()));
}

TEST(CheckpointStoreTest, AlternatesSlotsAndKeepsLatest) {
  TempDir dir;
  CheckpointStore store(dir.Sub("ck"));
  ASSERT_OK(store.Write(SampleCheckpoint(1)));
  ASSERT_OK(store.Write(SampleCheckpoint(2)));
  ASSERT_OK(store.Write(SampleCheckpoint(3)));
  // Both slot files exist; the latest wins.
  EXPECT_TRUE(io::PathExists(store.SlotPath(0)));
  EXPECT_TRUE(io::PathExists(store.SlotPath(1)));
  EXPECT_EQ(ValueOrDie(store.LoadLatest()).iteration, 3u);
}

TEST(CheckpointStoreTest, FallsBackWhenNewestSlotIsCorrupt) {
  TempDir dir;
  CheckpointStore store(dir.Sub("ck"));
  ASSERT_OK(store.Write(SampleCheckpoint(1)));
  ASSERT_OK(store.Write(SampleCheckpoint(2)));
  // Find and damage the slot holding iteration 2.
  for (int slot = 0; slot < 2; ++slot) {
    std::string data = ValueOrDie(io::ReadFileToString(store.SlotPath(slot)));
    auto cp = DecodeCheckpoint(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
    ASSERT_TRUE(cp.ok());
    if (cp->iteration == 2) {
      data[data.size() / 2] ^= 0x01;
      ASSERT_OK(io::WriteStringToFile(store.SlotPath(slot), data));
    }
  }
  EXPECT_EQ(ValueOrDie(store.LoadLatest()).iteration, 1u);
}

TEST(CheckpointStoreTest, AllSlotsCorruptIsCorruptData) {
  TempDir dir;
  CheckpointStore store(dir.Sub("ck"));
  ASSERT_OK(store.Write(SampleCheckpoint(1)));
  ASSERT_OK(store.Write(SampleCheckpoint(2)));
  for (int slot = 0; slot < 2; ++slot) {
    ASSERT_OK(io::WriteStringToFile(store.SlotPath(slot), "torn"));
  }
  EXPECT_EQ(store.LoadLatest().status().code(), StatusCode::kCorruptData);
}

TEST(CheckpointStoreTest, WriteNeverOverwritesTheLatestValidSlot) {
  TempDir dir;
  // A fresh store instance (as after a crash + restart) must rediscover
  // which slot holds the newest checkpoint and overwrite the other.
  {
    CheckpointStore store(dir.Sub("ck"));
    ASSERT_OK(store.Write(SampleCheckpoint(5)));
  }
  {
    CheckpointStore store(dir.Sub("ck"));
    ASSERT_OK(store.Write(SampleCheckpoint(6)));
    EXPECT_EQ(ValueOrDie(store.LoadLatest()).iteration, 6u);
  }
  // Both checkpoints still on disk, in different slots.
  CheckpointStore store(dir.Sub("ck"));
  std::uint32_t seen[2] = {0, 0};
  for (int slot = 0; slot < 2; ++slot) {
    std::string data = ValueOrDie(io::ReadFileToString(store.SlotPath(slot)));
    seen[slot] = ValueOrDie(DecodeCheckpoint(std::span<const std::uint8_t>(
                                reinterpret_cast<const std::uint8_t*>(
                                    data.data()),
                                data.size())))
                     .iteration;
  }
  EXPECT_EQ(seen[0] + seen[1], 11u);
}

TEST(AsyncCheckpointWriterTest, FlushMakesSubmittedFramesLoadable) {
  TempDir dir;
  CheckpointStore store(dir.Sub("ck"));
  AsyncCheckpointWriter writer(&store);
  EXPECT_GT(ValueOrDie(writer.Submit(SampleCheckpoint(1))), 0u);
  ASSERT_OK(writer.Flush());
  EXPECT_GT(writer.bytes_written(), 0u);
  EXPECT_EQ(ValueOrDie(store.LoadLatest()).iteration, 1u);
}

TEST(AsyncCheckpointWriterTest, LatestSubmissionWinsUnderBackpressure) {
  TempDir dir;
  CheckpointStore store(dir.Sub("ck"));
  AsyncCheckpointWriter writer(&store);
  // Rapid-fire submissions: superseded frames may be dropped, but the
  // newest must always survive to disk and the two-slot invariant holds.
  for (std::uint32_t i = 1; i <= 20; ++i) {
    ASSERT_OK(writer.Submit(SampleCheckpoint(i)).status());
  }
  ASSERT_OK(writer.Flush());
  EXPECT_EQ(ValueOrDie(store.LoadLatest()).iteration, 20u);
  EXPECT_LE(writer.frames_dropped(), 19u);
}

TEST(AsyncCheckpointWriterTest, FlushOnIdleWriterIsANoOp) {
  TempDir dir;
  CheckpointStore store(dir.Sub("ck"));
  AsyncCheckpointWriter writer(&store);
  ASSERT_OK(writer.Flush());
  EXPECT_EQ(writer.bytes_written(), 0u);
}

TEST(AsyncCheckpointWriterTest, DestructorDrainsQueuedFrames) {
  TempDir dir;
  {
    CheckpointStore store(dir.Sub("ck"));
    AsyncCheckpointWriter writer(&store);
    ASSERT_OK(writer.Submit(SampleCheckpoint(9)).status());
    // No Flush: destruction must still finish the queued write.
  }
  CheckpointStore store(dir.Sub("ck"));
  EXPECT_EQ(ValueOrDie(store.LoadLatest()).iteration, 9u);
}

}  // namespace
}  // namespace graphsd::core
