// Scheduler cost evaluation on compressed datasets: both models must be
// charged the on-disk (frame) byte counts with frame decode folded into
// the compute side, while raw datasets keep the original arithmetic.
#include <memory>

#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "graph/generators.hpp"
#include "testing_util.hpp"

namespace graphsd::core {
namespace {

using graphsd::testing::BuildTestGrid;
using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

class SchedulerCompressedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = io::MakeSimulatedDevice();
    RmatOptions options;
    options.scale = 10;
    options.edge_factor = 8;
    options.max_weight = 10.0;
    graph_ = GenerateRmat(options);
    BuildTestGrid(graph_, *device_, dir_.Sub("raw"), 4);
    BuildTestGrid(graph_, *device_, dir_.Sub("comp"), 4, "test",
                  "varint-delta");
    raw_ = std::make_unique<partition::GridDataset>(
        ValueOrDie(partition::GridDataset::Open(*device_, dir_.Sub("raw"))));
    comp_ = std::make_unique<partition::GridDataset>(
        ValueOrDie(partition::GridDataset::Open(*device_, dir_.Sub("comp"))));
  }

  TempDir dir_;
  std::unique_ptr<io::Device> device_;
  EdgeList graph_;
  std::unique_ptr<partition::GridDataset> raw_;
  std::unique_ptr<partition::GridDataset> comp_;
};

TEST_F(SchedulerCompressedTest, RawDatasetChargesNoDecode) {
  StateAwareScheduler scheduler(*raw_, io::IoCostModel::Hdd());
  Frontier active(raw_->num_vertices());
  active.ActivateAll();
  const SchedulerDecision d = scheduler.Evaluate(active, 8, true);
  EXPECT_EQ(d.decode_seconds_full, 0.0);
  EXPECT_EQ(d.decode_seconds_on_demand, 0.0);
  EXPECT_EQ(d.serial_cost_full, d.cost_full);
  EXPECT_EQ(d.serial_cost_on_demand, d.cost_on_demand);
}

TEST_F(SchedulerCompressedTest, FullModelChargesFrameBytesPlusDecode) {
  const io::IoCostModel model = io::IoCostModel::Hdd();
  StateAwareScheduler raw_sched(*raw_, model);
  StateAwareScheduler comp_sched(*comp_, model);
  Frontier active(raw_->num_vertices());
  active.ActivateAll();
  const SchedulerDecision raw_d = raw_sched.Evaluate(active, 8, true);
  const SchedulerDecision comp_d = comp_sched.Evaluate(active, 8, true);

  // Decode estimate covers the full decoded edge payload.
  EXPECT_GT(comp_d.decode_seconds_full, 0.0);
  EXPECT_NEAR(comp_d.decode_seconds_full,
              model.DecodeSeconds(comp_->num_edges() * kEdgeBytes), 1e-12);

  // The disk portion of C_s shrinks by exactly the byte reduction: the
  // serial compressed cost minus decode must undercut the raw C_s.
  ASSERT_LT(comp_->manifest().TotalEdgeFileBytes(),
            raw_->manifest().TotalEdgeFileBytes());
  EXPECT_LT(comp_d.serial_cost_full - comp_d.decode_seconds_full,
            raw_d.serial_cost_full);
}

TEST_F(SchedulerCompressedTest, OnDemandChargesWholeFramesOfActiveRows) {
  const io::IoCostModel model = io::IoCostModel::Hdd();
  StateAwareScheduler scheduler(*comp_, model);
  const auto& manifest = comp_->manifest();

  // All rows active: S_seq must include every non-empty sub-block's frame
  // (the CSR index addresses decoded offsets, so edges arrive per frame).
  Frontier all(comp_->num_vertices());
  all.ActivateAll();
  const SchedulerDecision d_all = scheduler.Evaluate(all, 8, true);
  EXPECT_GE(d_all.seq_bytes, manifest.TotalEdgeFileBytes());
  EXPECT_GT(d_all.decode_seconds_on_demand, 0.0);
  EXPECT_NEAR(d_all.decode_seconds_on_demand,
              model.DecodeSeconds(comp_->num_edges() * kEdgeBytes), 1e-12);

  // One active vertex: only its row's frames are charged and decoded.
  Frontier one(comp_->num_vertices());
  VertexId v = 0;
  while (v < comp_->num_vertices() && comp_->out_degrees()[v] == 0) ++v;
  ASSERT_LT(v, comp_->num_vertices());
  one.Activate(v);
  const SchedulerDecision d_one = scheduler.Evaluate(one, 8, true);
  const std::uint32_t row = partition::IntervalOf(manifest.boundaries, v);
  std::uint64_t row_frames = 0;
  std::uint64_t row_edges = 0;
  for (std::uint32_t j = 0; j < manifest.p; ++j) {
    if (manifest.EdgesIn(row, j) == 0) continue;
    row_frames += manifest.EdgeFileBytes(row, j);
    row_edges += manifest.EdgesIn(row, j);
  }
  EXPECT_GE(d_one.seq_bytes, row_frames);
  EXPECT_LT(d_one.seq_bytes, manifest.TotalEdgeFileBytes());
  EXPECT_NEAR(d_one.decode_seconds_on_demand,
              model.DecodeSeconds(row_edges * kEdgeBytes), 1e-12);
  EXPECT_LT(d_one.decode_seconds_on_demand, d_all.decode_seconds_on_demand);
}

TEST_F(SchedulerCompressedTest, OverlapChargingKeepsSerialTieBreak) {
  StateAwareScheduler scheduler(*comp_, io::IoCostModel::Hdd());
  Frontier active(comp_->num_vertices());
  active.ActivateAll();
  const SchedulerDecision serial = scheduler.Evaluate(active, 8, true);
  // A compute floor high enough to drown both disk costs: the charged
  // costs converge to compute + decode, and the tie-break must fall back
  // to the serial costs instead of flapping on float noise.
  const double huge = 1e9;
  const SchedulerDecision overlapped =
      scheduler.Evaluate(active, 8, true, /*fciu_round=*/false, huge);
  EXPECT_TRUE(overlapped.overlapped);
  EXPECT_FALSE(serial.overlapped);
  EXPECT_EQ(overlapped.serial_cost_full, serial.serial_cost_full);
  EXPECT_EQ(overlapped.serial_cost_on_demand, serial.serial_cost_on_demand);
  EXPECT_GE(overlapped.cost_full, huge);
  EXPECT_GE(overlapped.cost_on_demand, huge);
  EXPECT_EQ(overlapped.on_demand, serial.on_demand);
}

}  // namespace
}  // namespace graphsd::core
