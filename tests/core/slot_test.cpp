#include "core/slot.hpp"

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace graphsd::core {
namespace {

TEST(Slot, DoubleRoundTrip) {
  for (double v : {0.0, 1.0, -3.5, 1e-300, std::numeric_limits<double>::infinity()}) {
    EXPECT_EQ(SlotToDouble(SlotFromDouble(v)), v);
  }
}

TEST(AtomicMinDouble, LowersAndReports) {
  Slot slot = SlotFromDouble(10.0);
  EXPECT_TRUE(AtomicMinDouble(&slot, 5.0));
  EXPECT_EQ(SlotToDouble(slot), 5.0);
  EXPECT_FALSE(AtomicMinDouble(&slot, 7.0));
  EXPECT_EQ(SlotToDouble(slot), 5.0);
  EXPECT_FALSE(AtomicMinDouble(&slot, 5.0));  // equal is not a lowering
}

TEST(AtomicMinDouble, HandlesInfinity) {
  Slot slot = SlotFromDouble(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(AtomicMinDouble(&slot, 1e308));
  EXPECT_EQ(SlotToDouble(slot), 1e308);
}

TEST(AtomicMinU64, LowersAndReports) {
  Slot slot = 100;
  EXPECT_TRUE(AtomicMinU64(&slot, 7));
  EXPECT_EQ(slot, 7u);
  EXPECT_FALSE(AtomicMinU64(&slot, 9));
  EXPECT_FALSE(AtomicMinU64(&slot, 7));
}

TEST(AtomicAddDouble, ReturnsNewValue) {
  Slot slot = SlotFromDouble(1.5);
  EXPECT_DOUBLE_EQ(AtomicAddDouble(&slot, 2.5), 4.0);
  EXPECT_DOUBLE_EQ(SlotToDouble(slot), 4.0);
}

TEST(AtomicAddDouble, ConcurrentSumsAreLossless) {
  Slot slot = SlotFromDouble(0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) AtomicAddDouble(&slot, 1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(SlotToDouble(slot), 40000.0);
}

TEST(AtomicMinU64, ConcurrentMinFindsGlobalMinimum) {
  Slot slot = UINT64_MAX;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 10000; ++i) {
        AtomicMinU64(&slot, (i * 7 + t) % 100000 + 42);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(slot, 42u);
}

}  // namespace
}  // namespace graphsd::core
