#include "core/sub_block_buffer.hpp"

#include <gtest/gtest.h>

namespace graphsd::core {
namespace {

partition::SubBlock MakeBlock(std::size_t num_edges) {
  partition::SubBlock block;
  block.edges.resize(num_edges, Edge{1, 2});
  return block;
}

TEST(SubBlockBuffer, DisabledBufferRejectsEverything) {
  SubBlockBuffer buffer(0);
  EXPECT_FALSE(buffer.enabled());
  EXPECT_FALSE(buffer.Put(0, 1, MakeBlock(1), 100));
  EXPECT_EQ(buffer.Get(0, 1), nullptr);
  EXPECT_EQ(buffer.hits(), 0u);
  EXPECT_EQ(buffer.misses(), 0u);  // disabled Get doesn't count a miss
}

TEST(SubBlockBuffer, PutThenGetHits) {
  SubBlockBuffer buffer(1 << 20);
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 5));
  const partition::SubBlock* block = buffer.Get(1, 0);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->edges.size(), 10u);
  EXPECT_EQ(buffer.hits(), 1u);
  EXPECT_EQ(buffer.bytes_saved(), 10 * sizeof(Edge));
}

TEST(SubBlockBuffer, MissCountsAndReturnsNull) {
  SubBlockBuffer buffer(1 << 20);
  EXPECT_EQ(buffer.Get(3, 3), nullptr);
  EXPECT_EQ(buffer.misses(), 1u);
}

TEST(SubBlockBuffer, RejectsBlockLargerThanCapacity) {
  SubBlockBuffer buffer(64);
  EXPECT_FALSE(buffer.Put(0, 0, MakeBlock(100), 1000));
  EXPECT_EQ(buffer.size_bytes(), 0u);
}

TEST(SubBlockBuffer, EvictsLowestPriorityFirst) {
  // Capacity fits exactly two 10-edge blocks.
  SubBlockBuffer buffer(2 * 10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), /*priority=*/5));
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(10), /*priority=*/9));
  // Higher priority than the lowest entry: evicts (1,0), not (2,0).
  ASSERT_TRUE(buffer.Put(3, 0, MakeBlock(10), /*priority=*/7));
  EXPECT_EQ(buffer.Get(1, 0), nullptr);
  EXPECT_NE(buffer.Get(2, 0), nullptr);
  EXPECT_NE(buffer.Get(3, 0), nullptr);
}

TEST(SubBlockBuffer, RefusesInsertWhenEverythingElseIsHotter) {
  SubBlockBuffer buffer(10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 100));
  EXPECT_FALSE(buffer.Put(2, 0, MakeBlock(10), 50));  // colder: rejected
  EXPECT_NE(buffer.Get(1, 0), nullptr);
}

TEST(SubBlockBuffer, EqualPriorityDoesNotEvict) {
  SubBlockBuffer buffer(10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 5));
  EXPECT_FALSE(buffer.Put(2, 0, MakeBlock(10), 5));
}

TEST(SubBlockBuffer, UpdatePriorityChangesEvictionOrder) {
  SubBlockBuffer buffer(2 * 10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 5));
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(10), 6));
  buffer.UpdatePriority(2, 0, 1);  // now (2,0) is the coldest
  ASSERT_TRUE(buffer.Put(3, 0, MakeBlock(10), 4));
  EXPECT_EQ(buffer.Get(2, 0), nullptr);
  EXPECT_NE(buffer.Get(1, 0), nullptr);
}

TEST(SubBlockBuffer, ReplacingAnEntryReleasesItsBytes) {
  SubBlockBuffer buffer(20 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(20), 5));
  EXPECT_EQ(buffer.size_bytes(), 20 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 5));  // same key, smaller block
  EXPECT_EQ(buffer.size_bytes(), 10 * sizeof(Edge));
  EXPECT_EQ(buffer.Get(1, 0)->edges.size(), 10u);
}

TEST(SubBlockBuffer, EraseAndClear) {
  SubBlockBuffer buffer(1 << 20);
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(5), 1));
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(5), 1));
  buffer.Erase(1, 0);
  EXPECT_EQ(buffer.Get(1, 0), nullptr);
  EXPECT_NE(buffer.Get(2, 0), nullptr);
  buffer.Clear();
  EXPECT_EQ(buffer.Get(2, 0), nullptr);
  EXPECT_EQ(buffer.size_bytes(), 0u);
  EXPECT_EQ(buffer.entry_count(), 0u);
}

TEST(SubBlockBuffer, ForEachEntryVisitsAll) {
  SubBlockBuffer buffer(1 << 20);
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(3), 1));
  ASSERT_TRUE(buffer.Put(2, 1, MakeBlock(4), 1));
  std::size_t visited = 0;
  std::size_t total_edges = 0;
  buffer.ForEachEntry([&](std::uint32_t, std::uint32_t,
                          const partition::SubBlock& block) {
    ++visited;
    total_edges += block.edges.size();
  });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(total_edges, 7u);
}

TEST(SubBlockBuffer, OversizedBlockRejectedBeforeAnyEviction) {
  // Regression: an impossible insert used to flush colder residents before
  // discovering the block could never fit.
  SubBlockBuffer buffer(2 * 10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 1));
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(10), 2));
  const std::uint64_t used = buffer.size_bytes();
  EXPECT_FALSE(buffer.Put(3, 0, MakeBlock(100), /*priority=*/1000));
  // The cache is untouched: same residents, same bytes, no evictions.
  EXPECT_NE(buffer.Get(1, 0), nullptr);
  EXPECT_NE(buffer.Get(2, 0), nullptr);
  EXPECT_EQ(buffer.size_bytes(), used);
  EXPECT_EQ(buffer.entry_count(), 2u);
  EXPECT_EQ(buffer.evictions(), 0u);
  EXPECT_EQ(buffer.rejected_puts(), 1u);
}

TEST(SubBlockBuffer, InfeasibleInsertDoesNotPartiallyFlush) {
  // Three residents; the incoming block is hotter than one of them but
  // evicting that one alone cannot make room. Nothing may be evicted.
  SubBlockBuffer buffer(3 * 10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 2));   // colder than incoming
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(10), 50));  // hotter
  ASSERT_TRUE(buffer.Put(3, 0, MakeBlock(10), 60));  // hotter
  EXPECT_FALSE(buffer.Put(4, 0, MakeBlock(25), /*priority=*/10));
  EXPECT_NE(buffer.Get(1, 0), nullptr);
  EXPECT_NE(buffer.Get(2, 0), nullptr);
  EXPECT_NE(buffer.Get(3, 0), nullptr);
  EXPECT_EQ(buffer.evictions(), 0u);
  EXPECT_EQ(buffer.rejected_puts(), 1u);
}

TEST(SubBlockBuffer, EqualPriorityEvictionIsDeterministic) {
  // Two equal-priority victims: the smaller (i, j) key goes first, however
  // the hash map happens to order them.
  for (int attempt = 0; attempt < 4; ++attempt) {
    SubBlockBuffer buffer(2 * 10 * sizeof(Edge));
    // Vary insertion order across attempts; the victim must not change.
    if (attempt % 2 == 0) {
      ASSERT_TRUE(buffer.Put(7, 3, MakeBlock(10), 5));
      ASSERT_TRUE(buffer.Put(2, 9, MakeBlock(10), 5));
    } else {
      ASSERT_TRUE(buffer.Put(2, 9, MakeBlock(10), 5));
      ASSERT_TRUE(buffer.Put(7, 3, MakeBlock(10), 5));
    }
    ASSERT_TRUE(buffer.Put(1, 1, MakeBlock(10), /*priority=*/6));
    EXPECT_EQ(buffer.Get(2, 9), nullptr) << "attempt " << attempt;
    EXPECT_NE(buffer.Get(7, 3), nullptr) << "attempt " << attempt;
    EXPECT_NE(buffer.Get(1, 1), nullptr) << "attempt " << attempt;
    EXPECT_EQ(buffer.evictions(), 1u);
  }
}

TEST(SubBlockBuffer, EvictionCounterTracksVictims) {
  SubBlockBuffer buffer(2 * 10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 1));
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(10), 2));
  EXPECT_EQ(buffer.evictions(), 0u);
  // Needs both residents gone: two evictions in one Put.
  ASSERT_TRUE(buffer.Put(3, 0, MakeBlock(20), /*priority=*/9));
  EXPECT_EQ(buffer.evictions(), 2u);
  EXPECT_EQ(buffer.entry_count(), 1u);
}

TEST(SubBlockBuffer, SameKeyReplacementIsNotAnEviction) {
  SubBlockBuffer buffer(20 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(20), 5));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(20), 5));
  EXPECT_EQ(buffer.evictions(), 0u);
  EXPECT_EQ(buffer.rejected_puts(), 0u);
}

TEST(SubBlockBuffer, DisabledBufferDoesNotCountRejections) {
  // A disabled buffer refuses by design, not by capacity pressure; the
  // rejected-put diagnostic stays quiet.
  SubBlockBuffer buffer(0);
  EXPECT_FALSE(buffer.Put(0, 1, MakeBlock(1), 100));
  EXPECT_EQ(buffer.rejected_puts(), 0u);
}

TEST(SubBlockBuffer, WeightsCountTowardCapacity) {
  partition::SubBlock block;
  block.edges.resize(8);
  block.weights.resize(8);
  const std::uint64_t bytes = block.SizeBytes();
  EXPECT_EQ(bytes, 8 * sizeof(Edge) + 8 * sizeof(Weight));
  SubBlockBuffer tight(bytes - 1);
  EXPECT_FALSE(tight.Put(0, 0, std::move(block), 1));
}

}  // namespace
}  // namespace graphsd::core
