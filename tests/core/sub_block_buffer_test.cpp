#include "core/sub_block_buffer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace graphsd::core {
namespace {

partition::SubBlock MakeBlock(std::size_t num_edges) {
  partition::SubBlock block;
  block.edges.resize(num_edges, Edge{1, 2});
  return block;
}

TEST(SubBlockBuffer, DisabledBufferRejectsEverything) {
  SubBlockBuffer buffer(0);
  EXPECT_FALSE(buffer.enabled());
  EXPECT_FALSE(buffer.Put(0, 1, MakeBlock(1), 100));
  EXPECT_FALSE(buffer.Get(0, 1));
  EXPECT_EQ(buffer.hits(), 0u);
  EXPECT_EQ(buffer.misses(), 0u);  // disabled Get doesn't count a miss
}

TEST(SubBlockBuffer, PutThenGetHits) {
  SubBlockBuffer buffer(1 << 20);
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 5));
  SubBlockBuffer::Pin block = buffer.Get(1, 0);
  ASSERT_TRUE(block);
  EXPECT_EQ(block->edges.size(), 10u);
  EXPECT_EQ(buffer.hits(), 1u);
  EXPECT_EQ(buffer.bytes_saved(), 10 * sizeof(Edge));
}

TEST(SubBlockBuffer, MissCountsAndReturnsEmptyPin) {
  SubBlockBuffer buffer(1 << 20);
  EXPECT_FALSE(buffer.Get(3, 3));
  EXPECT_EQ(buffer.misses(), 1u);
}

TEST(SubBlockBuffer, RejectsBlockLargerThanCapacity) {
  SubBlockBuffer buffer(64);
  EXPECT_FALSE(buffer.Put(0, 0, MakeBlock(100), 1000));
  EXPECT_EQ(buffer.size_bytes(), 0u);
}

TEST(SubBlockBuffer, EvictsLowestPriorityFirst) {
  // Capacity fits exactly two 10-edge blocks.
  SubBlockBuffer buffer(2 * 10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), /*priority=*/5));
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(10), /*priority=*/9));
  // Higher priority than the lowest entry: evicts (1,0), not (2,0).
  ASSERT_TRUE(buffer.Put(3, 0, MakeBlock(10), /*priority=*/7));
  EXPECT_FALSE(buffer.Get(1, 0));
  EXPECT_TRUE(buffer.Get(2, 0));
  EXPECT_TRUE(buffer.Get(3, 0));
}

TEST(SubBlockBuffer, RefusesInsertWhenEverythingElseIsHotter) {
  SubBlockBuffer buffer(10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 100));
  EXPECT_FALSE(buffer.Put(2, 0, MakeBlock(10), 50));  // colder: rejected
  EXPECT_TRUE(buffer.Get(1, 0));
}

TEST(SubBlockBuffer, EqualPriorityDoesNotEvict) {
  SubBlockBuffer buffer(10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 5));
  EXPECT_FALSE(buffer.Put(2, 0, MakeBlock(10), 5));
}

TEST(SubBlockBuffer, UpdatePriorityChangesEvictionOrder) {
  SubBlockBuffer buffer(2 * 10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 5));
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(10), 6));
  buffer.UpdatePriority(2, 0, 1);  // now (2,0) is the coldest
  ASSERT_TRUE(buffer.Put(3, 0, MakeBlock(10), 4));
  EXPECT_FALSE(buffer.Get(2, 0));
  EXPECT_TRUE(buffer.Get(1, 0));
}

TEST(SubBlockBuffer, ReplacingAnEntryReleasesItsBytes) {
  SubBlockBuffer buffer(20 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(20), 5));
  EXPECT_EQ(buffer.size_bytes(), 20 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 5));  // same key, smaller block
  EXPECT_EQ(buffer.size_bytes(), 10 * sizeof(Edge));
  EXPECT_EQ(buffer.Get(1, 0)->edges.size(), 10u);
}

TEST(SubBlockBuffer, EraseAndClear) {
  SubBlockBuffer buffer(1 << 20);
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(5), 1));
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(5), 1));
  buffer.Erase(1, 0);
  EXPECT_FALSE(buffer.Get(1, 0));
  EXPECT_TRUE(buffer.Get(2, 0));
  buffer.Clear();
  EXPECT_FALSE(buffer.Get(2, 0));
  EXPECT_EQ(buffer.size_bytes(), 0u);
  EXPECT_EQ(buffer.entry_count(), 0u);
}

TEST(SubBlockBuffer, ForEachEntryVisitsAll) {
  SubBlockBuffer buffer(1 << 20);
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(3), 1));
  ASSERT_TRUE(buffer.Put(2, 1, MakeBlock(4), 1));
  std::size_t visited = 0;
  std::size_t total_edges = 0;
  buffer.ForEachEntry([&](std::uint32_t, std::uint32_t,
                          const partition::SubBlock& block) {
    ++visited;
    total_edges += block.edges.size();
  });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(total_edges, 7u);
}

TEST(SubBlockBuffer, RescoreUpdatesEveryEntryAtomically) {
  SubBlockBuffer buffer(2 * 10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 100));
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(10), 100));
  buffer.Rescore([](std::uint32_t i, std::uint32_t,
                    const partition::SubBlock&) -> std::uint64_t {
    return i == 1 ? 1 : 50;  // (1,0) becomes the coldest
  });
  ASSERT_TRUE(buffer.Put(3, 0, MakeBlock(10), 10));
  EXPECT_FALSE(buffer.Get(1, 0));
  EXPECT_TRUE(buffer.Get(2, 0));
}

TEST(SubBlockBuffer, OversizedBlockRejectedBeforeAnyEviction) {
  // Regression: an impossible insert used to flush colder residents before
  // discovering the block could never fit.
  SubBlockBuffer buffer(2 * 10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 1));
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(10), 2));
  const std::uint64_t used = buffer.size_bytes();
  EXPECT_FALSE(buffer.Put(3, 0, MakeBlock(100), /*priority=*/1000));
  // The cache is untouched: same residents, same bytes, no evictions.
  EXPECT_TRUE(buffer.Get(1, 0));
  EXPECT_TRUE(buffer.Get(2, 0));
  EXPECT_EQ(buffer.size_bytes(), used);
  EXPECT_EQ(buffer.entry_count(), 2u);
  EXPECT_EQ(buffer.evictions(), 0u);
  EXPECT_EQ(buffer.rejected_puts(), 1u);
}

TEST(SubBlockBuffer, InfeasibleInsertDoesNotPartiallyFlush) {
  // Three residents; the incoming block is hotter than one of them but
  // evicting that one alone cannot make room. Nothing may be evicted.
  SubBlockBuffer buffer(3 * 10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 2));   // colder than incoming
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(10), 50));  // hotter
  ASSERT_TRUE(buffer.Put(3, 0, MakeBlock(10), 60));  // hotter
  EXPECT_FALSE(buffer.Put(4, 0, MakeBlock(25), /*priority=*/10));
  EXPECT_TRUE(buffer.Get(1, 0));
  EXPECT_TRUE(buffer.Get(2, 0));
  EXPECT_TRUE(buffer.Get(3, 0));
  EXPECT_EQ(buffer.evictions(), 0u);
  EXPECT_EQ(buffer.rejected_puts(), 1u);
}

TEST(SubBlockBuffer, EqualPriorityEvictionIsDeterministic) {
  // Two equal-priority victims: the smaller (i, j) key goes first, however
  // the hash map happens to order them.
  for (int attempt = 0; attempt < 4; ++attempt) {
    SubBlockBuffer buffer(2 * 10 * sizeof(Edge));
    // Vary insertion order across attempts; the victim must not change.
    if (attempt % 2 == 0) {
      ASSERT_TRUE(buffer.Put(7, 3, MakeBlock(10), 5));
      ASSERT_TRUE(buffer.Put(2, 9, MakeBlock(10), 5));
    } else {
      ASSERT_TRUE(buffer.Put(2, 9, MakeBlock(10), 5));
      ASSERT_TRUE(buffer.Put(7, 3, MakeBlock(10), 5));
    }
    ASSERT_TRUE(buffer.Put(1, 1, MakeBlock(10), /*priority=*/6));
    EXPECT_FALSE(buffer.Get(2, 9)) << "attempt " << attempt;
    EXPECT_TRUE(buffer.Get(7, 3)) << "attempt " << attempt;
    EXPECT_TRUE(buffer.Get(1, 1)) << "attempt " << attempt;
    EXPECT_EQ(buffer.evictions(), 1u);
  }
}

TEST(SubBlockBuffer, EvictionCounterTracksVictims) {
  SubBlockBuffer buffer(2 * 10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 1));
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(10), 2));
  EXPECT_EQ(buffer.evictions(), 0u);
  // Needs both residents gone: two evictions in one Put.
  ASSERT_TRUE(buffer.Put(3, 0, MakeBlock(20), /*priority=*/9));
  EXPECT_EQ(buffer.evictions(), 2u);
  EXPECT_EQ(buffer.entry_count(), 1u);
}

TEST(SubBlockBuffer, SameKeyReplacementIsNotAnEviction) {
  SubBlockBuffer buffer(20 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(20), 5));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(20), 5));
  EXPECT_EQ(buffer.evictions(), 0u);
  EXPECT_EQ(buffer.rejected_puts(), 0u);
}

TEST(SubBlockBuffer, DisabledBufferDoesNotCountRejections) {
  // A disabled buffer refuses by design, not by capacity pressure; the
  // rejected-put diagnostic stays quiet.
  SubBlockBuffer buffer(0);
  EXPECT_FALSE(buffer.Put(0, 1, MakeBlock(1), 100));
  EXPECT_EQ(buffer.rejected_puts(), 0u);
}

TEST(SubBlockBuffer, WeightsCountTowardCapacity) {
  partition::SubBlock block;
  block.edges.resize(8);
  block.weights.resize(8);
  const std::uint64_t bytes = block.SizeBytes();
  EXPECT_EQ(bytes, 8 * sizeof(Edge) + 8 * sizeof(Weight));
  SubBlockBuffer tight(bytes - 1);
  EXPECT_FALSE(tight.Put(0, 0, std::move(block), 1));
}

// --- pinning (shared buffer tier, DESIGN.md §13) ---------------------------

TEST(SubBlockBufferPin, PinnedEntryIsNeverEvicted) {
  SubBlockBuffer buffer(2 * 10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), /*priority=*/1));  // coldest
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(10), /*priority=*/2));
  SubBlockBuffer::Pin pin = buffer.Get(1, 0);
  ASSERT_TRUE(pin);
  EXPECT_EQ(buffer.pinned_count(), 1u);
  // Would normally evict (1,0); with it pinned only (2,0) is evictable.
  ASSERT_TRUE(buffer.Put(3, 0, MakeBlock(10), /*priority=*/9));
  EXPECT_TRUE(buffer.Contains(1, 0));
  EXPECT_FALSE(buffer.Contains(2, 0));
  EXPECT_EQ(pin->edges.size(), 10u);  // pointer still valid
  pin.Release();
  EXPECT_EQ(buffer.pinned_count(), 0u);
}

TEST(SubBlockBufferPin, InsertInfeasibleWhenOnlyVictimIsPinned) {
  SubBlockBuffer buffer(10 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), /*priority=*/1));
  SubBlockBuffer::Pin pin = buffer.Get(1, 0);
  ASSERT_TRUE(pin);
  // Hotter, but the only evictable bytes are pinned: reject, don't evict.
  EXPECT_FALSE(buffer.Put(2, 0, MakeBlock(10), /*priority=*/100));
  EXPECT_EQ(buffer.rejected_puts(), 1u);
  EXPECT_TRUE(buffer.Contains(1, 0));
}

TEST(SubBlockBufferPin, SameKeyReplacementOfPinnedEntryRejected) {
  SubBlockBuffer buffer(1 << 20);
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(10), 5));
  SubBlockBuffer::Pin pin = buffer.Get(1, 0);
  const partition::SubBlock* before = pin.get();
  EXPECT_FALSE(buffer.Put(1, 0, MakeBlock(20), 5));
  EXPECT_EQ(buffer.pinned_rejected_puts(), 1u);
  EXPECT_EQ(pin.get(), before);  // the pinned pointer was never touched
  pin.Release();
  EXPECT_TRUE(buffer.Put(1, 0, MakeBlock(20), 5));  // unpinned: replace ok
}

TEST(SubBlockBufferPin, EraseAndClearSkipPinnedEntries) {
  SubBlockBuffer buffer(1 << 20);
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(5), 1));
  ASSERT_TRUE(buffer.Put(2, 0, MakeBlock(5), 1));
  SubBlockBuffer::Pin pin = buffer.Get(1, 0);
  buffer.Erase(1, 0);  // no-op: pinned
  EXPECT_TRUE(buffer.Contains(1, 0));
  buffer.Clear();  // drops only (2,0)
  EXPECT_TRUE(buffer.Contains(1, 0));
  EXPECT_FALSE(buffer.Contains(2, 0));
  EXPECT_EQ(pin->edges.size(), 5u);
  pin.Release();
  buffer.Erase(1, 0);
  EXPECT_EQ(buffer.entry_count(), 0u);
}

TEST(SubBlockBufferPin, MultiplePinsOnOneEntry) {
  SubBlockBuffer buffer(1 << 20);
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(5), 1));
  SubBlockBuffer::Pin a = buffer.Get(1, 0);
  SubBlockBuffer::Pin b = buffer.Get(1, 0);
  EXPECT_EQ(buffer.pinned_count(), 1u);
  a.Release();
  buffer.Erase(1, 0);  // still pinned by b
  EXPECT_TRUE(buffer.Contains(1, 0));
  b.Release();
  buffer.Erase(1, 0);
  EXPECT_FALSE(buffer.Contains(1, 0));
}

TEST(SubBlockBufferPin, MovedFromPinDoesNotDoubleUnpin) {
  SubBlockBuffer buffer(1 << 20);
  ASSERT_TRUE(buffer.Put(1, 0, MakeBlock(5), 1));
  SubBlockBuffer::Pin a = buffer.Get(1, 0);
  SubBlockBuffer::Pin b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): asserting the state
  EXPECT_TRUE(b);
  a.Release();  // no-op on the moved-from handle
  EXPECT_EQ(buffer.pinned_count(), 1u);
  b.Release();
  EXPECT_EQ(buffer.pinned_count(), 0u);
}

// --- compressed frame entries (decode-on-hit, DESIGN.md §14) ---------------

partition::SubBlockPayload MakeFramePayload(std::size_t frame_bytes,
                                            std::size_t num_weights) {
  partition::SubBlockPayload payload;
  payload.frame.resize(frame_bytes, 0xab);
  payload.block.weights.resize(num_weights, Weight{1});
  return payload;
}

TEST(SubBlockBufferFrame, PutFrameServesUndecodedFrameOnHit) {
  SubBlockBuffer buffer(1 << 20);
  partition::SubBlockPayload payload = MakeFramePayload(64, 8);
  const std::uint64_t served = 8 * sizeof(Edge) + 8 * sizeof(Weight);
  ASSERT_TRUE(buffer.PutFrame(1, 0, std::move(payload), served, 5));
  EXPECT_EQ(buffer.frame_puts(), 1u);

  SubBlockBuffer::Pin pin = buffer.Get(1, 0, /*require_weights=*/true);
  ASSERT_TRUE(pin);
  EXPECT_TRUE(pin.compressed());
  EXPECT_EQ(pin.frame().size(), 64u);
  EXPECT_EQ(pin.frame()[0], 0xab);
  EXPECT_TRUE(pin->edges.empty());  // edges live in the frame
  EXPECT_EQ(pin->weights.size(), 8u);
  EXPECT_EQ(buffer.hits(), 1u);
  EXPECT_EQ(buffer.frame_hits(), 1u);
  // A hit saves the decoded view's bytes, not the stored footprint.
  EXPECT_EQ(buffer.bytes_saved(), served);
}

TEST(SubBlockBufferFrame, CapacityChargedAtStoredNotServedBytes) {
  // The stored footprint (frame + weights) is ~half the decoded view here;
  // the entry must fit a capacity the decoded block would overflow.
  const std::uint64_t stored = 16 + 8 * sizeof(Weight);
  const std::uint64_t served = 8 * sizeof(Edge) + 8 * sizeof(Weight);
  ASSERT_LT(stored, served);
  SubBlockBuffer buffer(stored);
  ASSERT_TRUE(buffer.PutFrame(1, 0, MakeFramePayload(16, 8), served, 1));
  EXPECT_EQ(buffer.size_bytes(), stored);
  EXPECT_EQ(buffer.AuditUsedBytes(), stored);
}

TEST(SubBlockBufferFrame, PutFrameWithoutFrameFallsBackToDecodedEntry) {
  SubBlockBuffer buffer(1 << 20);
  partition::SubBlockPayload payload;
  payload.block = MakeBlock(6);  // raw dataset: no frame attached
  ASSERT_TRUE(buffer.PutFrame(2, 0, std::move(payload),
                              /*served_bytes=*/6 * sizeof(Edge), 1));
  EXPECT_EQ(buffer.frame_puts(), 0u);
  SubBlockBuffer::Pin pin = buffer.Get(2, 0);
  ASSERT_TRUE(pin);
  EXPECT_FALSE(pin.compressed());
  EXPECT_EQ(pin->edges.size(), 6u);
  EXPECT_EQ(buffer.frame_hits(), 0u);
}

TEST(SubBlockBufferFrame, WeightlessFrameEntryMissesWeightedGet) {
  // A frame cached by a weightless SCIU pass must not satisfy a weighted
  // FCIU consumer: the weights are simply not there to decode.
  SubBlockBuffer buffer(1 << 20);
  ASSERT_TRUE(buffer.PutFrame(1, 0, MakeFramePayload(64, 0),
                              /*served_bytes=*/8 * sizeof(Edge), 1));
  EXPECT_FALSE(buffer.Get(1, 0, /*require_weights=*/true));
  EXPECT_EQ(buffer.misses(), 1u);
  SubBlockBuffer::Pin pin = buffer.Get(1, 0);
  ASSERT_TRUE(pin);
  EXPECT_TRUE(pin.compressed());
}

TEST(SubBlockBufferFrame, RescoreLeavesFrameEntriesAtPutTimePriority) {
  // Rescore can only score decoded edges, so the frame entry keeps its
  // put-time priority (7) while the decoded entry is bumped to 99. Insert
  // pressure between the two must then evict the frame entry.
  SubBlockBuffer tight(32 + 4 * sizeof(Edge));
  ASSERT_TRUE(tight.PutFrame(1, 0, MakeFramePayload(32, 0), 100, 7));
  ASSERT_TRUE(tight.Put(2, 0, MakeBlock(4), 7));
  tight.Rescore([](std::uint32_t, std::uint32_t,
                   const partition::SubBlock&) -> std::uint64_t { return 99; });
  ASSERT_TRUE(tight.Put(3, 0, MakeBlock(4), /*priority=*/50));
  EXPECT_FALSE(tight.Contains(1, 0));
  EXPECT_TRUE(tight.Contains(2, 0));
  EXPECT_EQ(tight.AuditUsedBytes(), tight.size_bytes());
}

TEST(SubBlockBufferFrame, ReplacingFrameEntryReleasesStoredBytes) {
  SubBlockBuffer buffer(1 << 20);
  ASSERT_TRUE(buffer.PutFrame(1, 0, MakeFramePayload(128, 4), 200, 5));
  const std::uint64_t first = buffer.size_bytes();
  ASSERT_TRUE(buffer.PutFrame(1, 0, MakeFramePayload(32, 0), 100, 5));
  EXPECT_LT(buffer.size_bytes(), first);
  EXPECT_EQ(buffer.AuditUsedBytes(), buffer.size_bytes());
  EXPECT_EQ(buffer.evictions(), 0u);
}

// --- concurrency stress (counters exact, pins protective; TSan-clean) ------

TEST(SubBlockBufferConcurrency, CountersExactUnderConcurrentGetPut) {
  // 4 threads × 400 ops against a small buffer. Every Get outcome and Put
  // outcome is tallied locally; afterwards the buffer's counters must match
  // the tallies exactly — the "honest counters" satellite requirement.
  SubBlockBuffer buffer(8 * 16 * sizeof(Edge));
  constexpr int kThreads = 4;
  constexpr int kOps = 400;
  std::atomic<std::uint64_t> expect_hits{0};
  std::atomic<std::uint64_t> expect_misses{0};
  std::atomic<std::uint64_t> expect_accepted_puts{0};
  std::atomic<std::uint64_t> expect_rejected_puts{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int op = 0; op < kOps; ++op) {
        const std::uint32_t i = static_cast<std::uint32_t>((op * 7 + t) % 12);
        if (op % 3 == 0) {
          if (buffer.Put(i, 0, MakeBlock(16),
                         /*priority=*/static_cast<std::uint64_t>(op % 50))) {
            expect_accepted_puts.fetch_add(1);
          } else {
            expect_rejected_puts.fetch_add(1);
          }
        } else {
          SubBlockBuffer::Pin pin = buffer.Get(i, 0);
          if (pin) {
            expect_hits.fetch_add(1);
            // Touch the block while pinned: must stay valid despite the
            // other threads' Puts and evictions.
            ASSERT_EQ(pin->edges.size(), 16u);
          } else {
            expect_misses.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const SubBlockBuffer::Counters c = buffer.counters();
  EXPECT_EQ(c.hits, expect_hits.load());
  EXPECT_EQ(c.misses, expect_misses.load());
  EXPECT_EQ(c.rejected_puts, expect_rejected_puts.load());
  // Every accepted insert either is still resident or was evicted/replaced;
  // replacements release bytes without counting as evictions, so the
  // accounting identity is: accepted >= residents + evictions.
  EXPECT_GE(expect_accepted_puts.load(),
            buffer.entry_count() + c.evictions);
  EXPECT_EQ(buffer.pinned_count(), 0u);
  EXPECT_LE(buffer.size_bytes(), buffer.capacity_bytes());
  // Byte-accounting audit (satellite 3): after arbitrary interleavings the
  // budget must equal the sum of resident stored footprints exactly — any
  // site that charges stored bytes but credits a different figure drifts.
  EXPECT_EQ(buffer.AuditUsedBytes(), buffer.size_bytes());
}

TEST(SubBlockBufferConcurrency, AuditHoldsUnderMixedFrameAndDecodedChurn) {
  // Same stress shape but alternating decoded Puts and compressed PutFrames
  // (distinct stored/served figures) so a unit mix-up between the two entry
  // shapes cannot hide: the audit must still match after the churn.
  SubBlockBuffer buffer(6 * 16 * sizeof(Edge));
  constexpr int kThreads = 4;
  constexpr int kOps = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int op = 0; op < kOps; ++op) {
        const std::uint32_t i = static_cast<std::uint32_t>((op * 5 + t) % 10);
        const std::uint64_t priority = static_cast<std::uint64_t>(op % 40);
        switch (op % 4) {
          case 0:
            buffer.Put(i, 0, MakeBlock(16), priority);
            break;
          case 1:
            buffer.PutFrame(i, 0, MakeFramePayload(48, 16),
                            /*served_bytes=*/16 * sizeof(Edge) +
                                16 * sizeof(Weight),
                            priority);
            break;
          default: {
            SubBlockBuffer::Pin pin = buffer.Get(i, 0);
            if (pin && pin.compressed()) {
              ASSERT_EQ(pin.frame().size(), 48u);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(buffer.pinned_count(), 0u);
  EXPECT_LE(buffer.size_bytes(), buffer.capacity_bytes());
  EXPECT_EQ(buffer.AuditUsedBytes(), buffer.size_bytes());
}

TEST(SubBlockBufferConcurrency, PinsProtectReadersFromConcurrentEviction) {
  // Reader threads hold pins and repeatedly touch the pinned bytes while
  // writer threads churn the (tiny) buffer with hotter inserts. Under the
  // old raw-pointer API this was a use-after-free; with pins the entry
  // must survive until release. Run under TSan via tsan_service_smoke.
  SubBlockBuffer buffer(2 * 32 * sizeof(Edge));
  ASSERT_TRUE(buffer.Put(0, 0, MakeBlock(32), /*priority=*/1));
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        SubBlockBuffer::Pin pin = buffer.Get(0, 0);
        if (pin) {
          ASSERT_EQ(pin->edges.size(), 32u);
          ASSERT_EQ(pin->edges[31].src, 1u);
        }
      }
    });
  }
  std::thread writer([&] {
    for (std::uint32_t k = 1; k <= 500; ++k) {
      buffer.Put(k % 8 + 1, 0, MakeBlock(32), /*priority=*/k);
    }
    stop.store(true, std::memory_order_relaxed);
  });
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(buffer.pinned_count(), 0u);
}

}  // namespace
}  // namespace graphsd::core
