// Regression tests for the scheduler's on-demand request estimator: the
// log-linear anchor interpolation (InterpolateExpectedColumns), the
// per-crossed-row attribution of a run's requests, and the ceiling
// division that splits a run's bytes into seq/ran classes.
#include <cmath>
#include <iterator>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "graph/edge_list.hpp"
#include "partition/grid_dataset.hpp"
#include "testing_util.hpp"

namespace graphsd::core {
namespace {

using graphsd::testing::BuildTestGrid;
using graphsd::testing::TempDir;
using graphsd::testing::ValueOrDie;

// --- InterpolateExpectedColumns (unit) ------------------------------------

TEST(InterpolateExpectedColumns, ClampsOutsideAnchorRange) {
  const std::uint64_t anchors[] = {2, 4, 8};
  const double expected[] = {1.5, 2.5, 3.0};
  EXPECT_DOUBLE_EQ(InterpolateExpectedColumns(anchors, expected, 1), 1.5);
  EXPECT_DOUBLE_EQ(InterpolateExpectedColumns(anchors, expected, 2), 1.5);
  EXPECT_DOUBLE_EQ(InterpolateExpectedColumns(anchors, expected, 8), 3.0);
  EXPECT_DOUBLE_EQ(InterpolateExpectedColumns(anchors, expected, 100), 3.0);
}

TEST(InterpolateExpectedColumns, ExactAtInteriorAnchors) {
  const std::uint64_t anchors[] = {1, 2, 4, 8, 16};
  const double expected[] = {1.0, 1.9, 3.4, 5.0, 6.1};
  for (std::size_t a = 0; a < std::size(anchors); ++a) {
    EXPECT_DOUBLE_EQ(InterpolateExpectedColumns(anchors, expected, anchors[a]),
                     expected[a])
        << "anchor " << anchors[a];
  }
}

TEST(InterpolateExpectedColumns, LinearInLog2BetweenAnchors) {
  const std::uint64_t anchors[] = {1, 2, 4, 8};
  const double expected[] = {1.0, 2.0, 3.0, 4.0};
  // edges = 3 sits between anchors 2 and 4 at t = log2(3) - 1.
  EXPECT_DOUBLE_EQ(InterpolateExpectedColumns(anchors, expected, 3),
                   2.0 + (std::log2(3.0) - 1.0));
  // edges = 6 between anchors 4 and 8 at t = log2(6) - 2 = log2(3) - 1.
  EXPECT_DOUBLE_EQ(InterpolateExpectedColumns(anchors, expected, 6),
                   3.0 + (std::log2(6.0) - 2.0));
}

TEST(InterpolateExpectedColumns, MonotoneOverOffAnchorSizes) {
  // The scheduler's own anchor set with a monotone curve: the estimate must
  // be non-decreasing in run size everywhere, including off-anchor sizes.
  const std::uint64_t anchors[] = {1, 2, 4, 8, 16, 64, 256, 4096};
  const double expected[] = {1.0, 1.8, 2.9, 4.1, 5.6, 6.9, 7.6, 8.0};
  double prev = 0.0;
  for (std::uint64_t edges = 1; edges <= 5000; ++edges) {
    const double e = InterpolateExpectedColumns(anchors, expected, edges);
    EXPECT_GE(e, prev) << "edges " << edges;
    prev = e;
  }
}

// --- Evaluate-level pinning ------------------------------------------------

// Mirrors Evaluate's per-row anchor table: E[distinct cols at a edges] =
// sum_j 1 - (1 - p_ij)^a, floored at one column.
std::vector<double> AnchorCurve(const partition::GridManifest& manifest,
                                std::uint32_t row,
                                std::span<const std::uint64_t> anchors) {
  std::uint64_t row_total = 0;
  for (std::uint32_t j = 0; j < manifest.p; ++j) {
    row_total += manifest.EdgesIn(row, j);
  }
  std::vector<double> curve(anchors.size(), 1.0);
  for (std::size_t a = 0; a < anchors.size(); ++a) {
    double expected = 0.0;
    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      const double p_ij = static_cast<double>(manifest.EdgesIn(row, j)) /
                          static_cast<double>(row_total);
      expected +=
          1.0 - std::pow(1.0 - p_ij, static_cast<double>(anchors[a]));
    }
    curve[a] = std::max(1.0, expected);
  }
  return curve;
}

// The anchor sizes Evaluate precomputes the curve at.
constexpr std::uint64_t kAnchors[] = {1, 2, 4, 8, 16, 64, 256, 4096};

std::uint64_t ExpectedRequests(const partition::GridManifest& manifest,
                               std::uint32_t row, std::uint64_t edges) {
  const double expected = InterpolateExpectedColumns(
      kAnchors, AnchorCurve(manifest, row, kAnchors), edges);
  return std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(
             edges, static_cast<std::uint64_t>(expected + 0.5)));
}

struct BuiltCase {
  std::unique_ptr<io::Device> device;
  std::unique_ptr<partition::GridDataset> dataset;
};

BuiltCase Build(const EdgeList& graph, const std::string& dir, std::uint32_t p,
                const std::string& codec = "none") {
  BuiltCase out;
  out.device = io::MakeSimulatedDevice();
  BuildTestGrid(graph, *out.device, dir, p, "test", codec);
  out.dataset = std::make_unique<partition::GridDataset>(
      ValueOrDie(partition::GridDataset::Open(*out.device, dir)));
  return out;
}

Frontier ActiveSet(VertexId n, std::initializer_list<VertexId> vertices) {
  Frontier f(n);
  for (VertexId v : vertices) f.Activate(v);
  return f;
}

// An off-anchor run size must use the *interpolated* estimate, not snap to
// the covering anchor. Vertex 1 has 17 out-edges (between anchors 16 and
// 64) spread over all 8 columns; just above the lower anchor the
// interpolated curve rounds to one fewer request than the anchor-64 value,
// so snapping is distinguishable from interpolating.
TEST(SchedulerRequestEstimate, OffAnchorRunSizeUsesInterpolatedCurve) {
  EdgeList graph(16);
  // Column j of an 8-way split of 16 vertices is [2j, 2j + 2): three edges
  // into column 0, two into each of the other seven (17 total).
  graph.AddEdge(1, 0);
  graph.AddEdge(1, 0);
  graph.AddEdge(1, 1);
  for (VertexId j = 1; j < 8; ++j) {
    graph.AddEdge(1, 2 * j);
    graph.AddEdge(1, 2 * j + 1);
  }
  TempDir dir;
  const BuiltCase built = Build(graph, dir.Sub("ds"), 8);
  const auto& manifest = built.dataset->manifest();
  ASSERT_EQ(manifest.p, 8u);

  const std::uint64_t requests = ExpectedRequests(manifest, 0, 17);
  // Precondition for the regression: interpolation and anchor-snapping
  // disagree here (7 vs 8 requests).
  ASSERT_EQ(requests, 7u);
  const std::vector<double> curve = AnchorCurve(manifest, 0, kAnchors);
  ASSERT_EQ(static_cast<std::uint64_t>(curve[5] + 0.5), 8u)
      << "anchor-64 value no longer rounds to 8; rebuild the fixture";

  StateAwareScheduler scheduler(*built.dataset, io::IoCostModel::Hdd());
  const SchedulerDecision d =
      scheduler.Evaluate(ActiveSet(16, {1}), 8, false);
  EXPECT_EQ(d.random_requests, 1u);
  EXPECT_EQ(d.seeks, 2 * requests);
  // One source vertex in the run's single segment: (1 + 1) offsets per
  // index read.
  EXPECT_EQ(d.index_bytes, (1 + 1) * sizeof(std::uint32_t) * requests);
}

// A run that crosses an interval boundary has edges served from two rows'
// sub-blocks; each crossed row must be charged its own requests (the old
// accounting attributed the whole run to the final row).
TEST(SchedulerRequestEstimate, RunSpanningIntervalBoundaryChargesEachRow) {
  EdgeList graph(16);
  graph.AddEdge(3, 0);  // last vertex of interval [0, 4)
  graph.AddEdge(4, 0);  // first vertex of interval [4, 8)
  TempDir dir;
  const BuiltCase built = Build(graph, dir.Sub("ds"), 4);
  ASSERT_EQ(built.dataset->manifest().boundaries[1], 4u);

  StateAwareScheduler scheduler(*built.dataset, io::IoCostModel::Hdd());
  const SchedulerDecision d =
      scheduler.Evaluate(ActiveSet(16, {3, 4}), 8, false);
  // 3 and 4 are adjacent, so this is one run (one coalesced range)...
  EXPECT_EQ(d.random_requests, 1u);
  // ...but it spans rows 0 and 1: one single-edge segment each, so two
  // requests (a single-row run of one edge would clamp to one).
  EXPECT_EQ(d.seeks, 2u * 2u);
  EXPECT_EQ(d.index_bytes, 2u * (1 + 1) * sizeof(std::uint32_t));
}

// Zero-degree actives inside a run occupy no sub-block bytes in their row:
// a row crossed only by such vertices must not be charged a request.
TEST(SchedulerRequestEstimate, ZeroDegreeSegmentCostsNoRequests) {
  EdgeList graph(16);
  graph.AddEdge(3, 0);
  TempDir dir;
  const BuiltCase built = Build(graph, dir.Sub("ds"), 4);

  StateAwareScheduler scheduler(*built.dataset, io::IoCostModel::Hdd());
  // Vertex 4 (row 1) is active but has no out-edges; the run is still one
  // coalesced range, and only row 0's single-edge segment costs a request.
  const SchedulerDecision d =
      scheduler.Evaluate(ActiveSet(16, {3, 4}), 8, false);
  EXPECT_EQ(d.random_requests, 1u);
  EXPECT_EQ(d.seeks, 2u);
  EXPECT_EQ(d.index_bytes, (1 + 1) * sizeof(std::uint32_t));
}

// The seq/ran split divides a run's bytes by its request count *rounding
// up*: a 5-edge run (40 bytes) over 3 requests moves ceil(40/3) = 14 bytes
// per request, so it stays sequential at a 14-byte threshold. Truncating
// division (13) would misclassify it as random.
TEST(SchedulerRequestEstimate, ByteSplitRoundsPerRequestTransferUp) {
  EdgeList graph(16);
  // Five edges from vertex 1 across four columns of a 4-way split
  // ([0,4), [4,8), [8,12), [12,16)): two into column 0, one into each
  // other column.
  graph.AddEdge(1, 0);
  graph.AddEdge(1, 1);
  graph.AddEdge(1, 4);
  graph.AddEdge(1, 8);
  graph.AddEdge(1, 12);
  TempDir dir;
  const BuiltCase built = Build(graph, dir.Sub("ds"), 4);
  const auto& manifest = built.dataset->manifest();

  // Preconditions: 3 requests for the 5-edge run, 8 raw bytes per
  // unweighted edge -> 40 run bytes, ceil(40/3) = 14 but 40/3 = 13.
  ASSERT_EQ(ExpectedRequests(manifest, 0, 5), 3u);
  ASSERT_EQ(kEdgeBytes, 8u);

  io::IoCostModel at_threshold = io::IoCostModel::Hdd();
  at_threshold.random_request_bytes = 14;
  const SchedulerDecision seq =
      StateAwareScheduler(*built.dataset, at_threshold)
          .Evaluate(ActiveSet(16, {1}), 8, false);
  EXPECT_EQ(seq.seq_bytes, 40u);
  EXPECT_EQ(seq.rand_bytes, 0u);

  io::IoCostModel above_threshold = io::IoCostModel::Hdd();
  above_threshold.random_request_bytes = 15;
  const SchedulerDecision ran =
      StateAwareScheduler(*built.dataset, above_threshold)
          .Evaluate(ActiveSet(16, {1}), 8, false);
  EXPECT_EQ(ran.seq_bytes, 0u);
  EXPECT_EQ(ran.rand_bytes, 40u);
}

}  // namespace
}  // namespace graphsd::core
