#include "core/frontier.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace graphsd::core {
namespace {

TEST(Frontier, ActivateReportsFirstActivation) {
  Frontier f(100);
  EXPECT_TRUE(f.Empty());
  EXPECT_TRUE(f.Activate(5));
  EXPECT_FALSE(f.Activate(5));
  EXPECT_TRUE(f.IsActive(5));
  EXPECT_EQ(f.Count(), 1u);
  EXPECT_FALSE(f.Empty());
}

TEST(Frontier, DeactivateRemoves) {
  Frontier f(10);
  f.Activate(3);
  f.Deactivate(3);
  EXPECT_FALSE(f.IsActive(3));
  EXPECT_TRUE(f.Empty());
}

TEST(Frontier, ActivateAllAndClear) {
  Frontier f(77);
  f.ActivateAll();
  EXPECT_EQ(f.Count(), 77u);
  f.Clear();
  EXPECT_TRUE(f.Empty());
}

TEST(Frontier, ForEachActiveAscending) {
  Frontier f(200);
  for (VertexId v : {190, 3, 64, 63}) f.Activate(v);
  std::vector<VertexId> seen;
  f.ForEachActive([&](std::size_t v) { seen.push_back(static_cast<VertexId>(v)); });
  EXPECT_EQ(seen, (std::vector<VertexId>{3, 63, 64, 190}));
}

TEST(Frontier, RangeOperations) {
  Frontier f(100);
  for (VertexId v = 0; v < 100; v += 10) f.Activate(v);
  EXPECT_EQ(f.CountInRange(0, 100), 10u);
  EXPECT_EQ(f.CountInRange(5, 25), 2u);  // 10, 20
  std::vector<VertexId> seen;
  f.ForEachActiveInRange(20, 51, [&](std::size_t v) {
    seen.push_back(static_cast<VertexId>(v));
  });
  EXPECT_EQ(seen, (std::vector<VertexId>{20, 30, 40, 50}));
}

TEST(Frontier, CopyFromAndSwap) {
  Frontier a(50);
  Frontier b(50);
  a.Activate(7);
  b.CopyFrom(a);
  EXPECT_TRUE(b.IsActive(7));
  Frontier c(50);
  c.Activate(9);
  b.Swap(c);
  EXPECT_TRUE(b.IsActive(9));
  EXPECT_FALSE(b.IsActive(7));
  EXPECT_TRUE(c.IsActive(7));
}

TEST(Frontier, SizeReflectsConstruction) {
  Frontier f(123);
  EXPECT_EQ(f.size(), 123u);
}

}  // namespace
}  // namespace graphsd::core
